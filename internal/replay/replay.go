// Package replay provides the buffer primitives the continual-learning
// methods are built from: a FIFO ring, a reservoir-sampling buffer (ER/DER),
// and a class-balanced buffer (Chameleon's long-term store).
package replay

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// Item is one stored replay record. Which payload fields are populated
// depends on the method: every method stores a latent (or conceptually a raw
// image — the distinction is pure memory accounting, see internal/memcost);
// DER additionally stores logits; GSS stores a gradient sketch.
type Item struct {
	// Z is the latent activation payload (fp32 representation; nil while the
	// item sits quantized in an int8 store).
	Z *tensor.Tensor
	// Label is the class index.
	Label int
	// Logits is the model response captured at insertion time (DER).
	Logits *tensor.Tensor
	// GradSketch is the gradient-direction sketch (GSS).
	GradSketch *tensor.Tensor
	// QZ, Scale, and ZShape form the int8 representation used by quantized
	// stores: a symmetric per-tensor quantization q = round(z/Scale) with
	// Scale = max|z|/127, plus the latent shape for reconstruction. Exactly
	// one of Z and QZ is set; Int8Codec converts between the two. The dtype
	// is part of the checkpoint wire format — gob leaves these nil/zero on
	// legacy fp32 payloads, which is how old checkpoints keep decoding.
	QZ     []int8
	Scale  float32
	ZShape []int
}

// Quantized reports whether the item holds the int8 representation.
func (it Item) Quantized() bool { return it.QZ != nil }

// Reservoir is a fixed-capacity buffer maintaining a uniform sample of the
// stream via reservoir sampling (the buffer used by ER and DER).
type Reservoir struct {
	cap   int
	items []Item
	seen  int
	rng   *rand.Rand
	// idxBuf is SampleInto's index scratch. Deliberately unexported and
	// rebuilt on demand: checkpointing goes through State/SetState, which
	// never see it.
	idxBuf []int
	// codec, when non-nil, makes this an int8 store: items quantize as they
	// enter and dequantize as they are drawn.
	codec *Int8Codec
}

// EnableInt8 switches the reservoir to quantized storage. It must be called
// before the first Offer — converting live contents in place would break the
// bit-exact checkpoint contract.
func (r *Reservoir) EnableInt8() error {
	if len(r.items) > 0 || r.seen > 0 {
		return fmt.Errorf("replay: EnableInt8 on a non-empty reservoir (%d items, %d seen)", len(r.items), r.seen)
	}
	r.codec = NewInt8Codec()
	return nil
}

// Quantized reports whether the reservoir stores int8 latents.
func (r *Reservoir) Quantized() bool { return r.codec != nil }

// NewReservoir creates a reservoir with the given capacity.
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: reservoir capacity %d must be positive", capacity))
	}
	return &Reservoir{cap: capacity, rng: rng}
}

// Offer presents one stream item; it is stored with the reservoir
// probability. Returns true if the item entered the buffer.
func (r *Reservoir) Offer(it Item) bool {
	reservoirOffers.Add(1)
	r.seen++
	if len(r.items) < r.cap {
		if r.codec != nil {
			it = r.codec.Encode(it, nil)
		}
		r.items = append(r.items, it)
		reservoirFills.Add(1)
		return true
	}
	j := r.rng.Intn(r.seen)
	if j < r.cap {
		if r.codec != nil {
			// Quantize only on acceptance, recycling the victim's buffer:
			// rejected offers cost nothing and accepted ones allocate nothing.
			it = r.codec.Encode(it, r.items[j].QZ)
		}
		r.items[j] = it
		reservoirHits.Add(1)
		return true
	}
	reservoirSkips.Add(1)
	return false
}

// Sample returns n items drawn uniformly without replacement (fewer if the
// buffer holds fewer).
func (r *Reservoir) Sample(n int) []Item {
	out := sampleWithout(r.items, n, r.rng)
	if r.codec != nil {
		r.codec.decodeInto(out)
	}
	samplesDrawn.Add(int64(len(out)))
	return out
}

// SampleInto is Sample appending the drawn items to dst and returning it —
// the allocation-free variant for hot training loops (callers keep the
// returned slice as their reusable scratch). The RNG draw sequence is
// identical to Sample's, so swapping a call site between the two never moves
// a seeded run's random stream.
func (r *Reservoir) SampleInto(dst []Item, n int) []Item {
	before := len(dst)
	dst, r.idxBuf = sampleWithoutInto(dst, r.idxBuf, r.items, n, r.rng)
	if r.codec != nil {
		r.codec.decodeInto(dst[before:])
	}
	samplesDrawn.Add(int64(len(dst) - before))
	return dst
}

// Items returns a copy of the current contents. It used to return the live
// backing slice, which let callers overwrite stored records behind the
// reservoir's back — silently corrupting the uniform-sample invariant the
// RNG maintains. Mutating the returned slice is now harmless. Quantized
// stores return dequantized copies in freshly allocated tensors (a cold
// path); the raw int8 records come from State.
func (r *Reservoir) Items() []Item {
	out := append([]Item(nil), r.items...)
	if r.codec != nil {
		for i := range out {
			out[i] = r.codec.DecodeAlloc(out[i])
		}
	}
	return out
}

// Len returns the current fill.
func (r *Reservoir) Len() int { return len(r.items) }

// Cap returns the capacity.
func (r *Reservoir) Cap() int { return r.cap }

// Seen returns how many items have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// State copies the reservoir's contents and offer count for checkpointing.
// Quantized stores export their raw int8 records: the stored (QZ, Scale)
// pair is the canonical form, so a save/restore cycle is bit-exact by
// construction (re-quantizing dequantized values would not be).
func (r *Reservoir) State() ([]Item, int) {
	return append([]Item(nil), r.items...), r.seen
}

// SetState restores contents captured by State. The items are copied; seen
// must be at least len(items) (a reservoir can never hold more than it saw),
// and the items' dtype must match the store's (cross-dtype restores error;
// legacy payloads count as fp32).
func (r *Reservoir) SetState(items []Item, seen int) error {
	if len(items) > r.cap {
		return fmt.Errorf("replay: restoring %d items into capacity-%d reservoir", len(items), r.cap)
	}
	if seen < len(items) {
		return fmt.Errorf("replay: reservoir seen %d < %d stored items", seen, len(items))
	}
	if err := checkDtype(items, r.codec != nil, "reservoir"); err != nil {
		return err
	}
	r.items = append(r.items[:0:0], items...)
	r.seen = seen
	return nil
}

// Ring is a fixed-capacity FIFO buffer.
type Ring struct {
	cap   int
	items []Item
	next  int
	codec *Int8Codec
}

// NewRing creates a FIFO buffer with the given capacity.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: ring capacity %d must be positive", capacity))
	}
	return &Ring{cap: capacity, items: make([]Item, 0, capacity)}
}

// EnableInt8 switches the ring to quantized storage; it must be called while
// the ring is still empty.
func (r *Ring) EnableInt8() error {
	if len(r.items) > 0 {
		return fmt.Errorf("replay: EnableInt8 on a non-empty ring (%d items)", len(r.items))
	}
	r.codec = NewInt8Codec()
	return nil
}

// Quantized reports whether the ring stores int8 latents.
func (r *Ring) Quantized() bool { return r.codec != nil }

// Push inserts an item, evicting the oldest when full.
func (r *Ring) Push(it Item) {
	ringPushes.Add(1)
	if len(r.items) < r.cap {
		if r.codec != nil {
			it = r.codec.Encode(it, nil)
		}
		r.items = append(r.items, it)
		return
	}
	if r.codec != nil {
		it = r.codec.Encode(it, r.items[r.next].QZ)
	}
	r.items[r.next] = it
	r.next = (r.next + 1) % r.cap
	ringEvicts.Add(1)
}

// Items returns a copy of the current contents in arbitrary order. Like
// Reservoir.Items, this used to alias the live backing slice; a copy keeps
// caller-side mutation from rewriting the FIFO's history. Quantized rings
// return dequantized copies.
func (r *Ring) Items() []Item {
	out := append([]Item(nil), r.items...)
	if r.codec != nil {
		for i := range out {
			out[i] = r.codec.DecodeAlloc(out[i])
		}
	}
	return out
}

// Len returns the current fill.
func (r *Ring) Len() int { return len(r.items) }

// ClassBalanced keeps an equal per-class share of a global capacity. It
// backs Chameleon's long-term store and any class-stratified baseline.
type ClassBalanced struct {
	cap     int
	byClass map[int][]Item
	total   int
	rng     *rand.Rand
	// Scratch for the Into sampling variants (unexported; invisible to
	// Export/SetContents checkpointing).
	classBuf []int
	poolBuf  []Item
	idxBuf   []int
	codec    *Int8Codec
}

// EnableInt8 switches the buffer to quantized storage; it must be called
// while the buffer is still empty.
func (b *ClassBalanced) EnableInt8() error {
	if b.total > 0 {
		return fmt.Errorf("replay: EnableInt8 on a non-empty class-balanced buffer (%d items)", b.total)
	}
	b.codec = NewInt8Codec()
	return nil
}

// Quantized reports whether the buffer stores int8 latents.
func (b *ClassBalanced) Quantized() bool { return b.codec != nil }

// Dequantized decodes one quantized item into the buffer's slot'th scratch
// tensor (identity on fp32 stores and on already-decoded items). Callers
// walking Export/ExportInto or OfClass output of an int8 store use it to
// decode just the records they touch; like any scratch decode, the result is
// valid until the next decode into the same slot.
func (b *ClassBalanced) Dequantized(it Item, slot int) Item {
	if b.codec == nil {
		return it
	}
	return b.codec.Decode(it, slot)
}

// NewClassBalanced creates a class-balanced buffer with global capacity.
func NewClassBalanced(capacity int, rng *rand.Rand) *ClassBalanced {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: class-balanced capacity %d must be positive", capacity))
	}
	return &ClassBalanced{cap: capacity, byClass: map[int][]Item{}, rng: rng}
}

// Len returns the current fill.
func (b *ClassBalanced) Len() int { return b.total }

// Cap returns the global capacity.
func (b *ClassBalanced) Cap() int { return b.cap }

// Classes returns the class indices currently present, in ascending order.
// The order is part of the determinism contract: anything that iterates the
// buffer must not depend on Go's randomized map iteration, or seeded runs
// stop being repeatable.
func (b *ClassBalanced) Classes() []int {
	return b.classesInto(make([]int, 0, len(b.byClass)))
}

// classesInto is Classes appending into dst. The sort is an insertion sort:
// class counts are small (tens), and unlike the sort package it is guaranteed
// allocation-free, which the Into sampling variants pin in tests.
func (b *ClassBalanced) classesInto(dst []int) []int {
	for c := range b.byClass {
		dst = append(dst, c)
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// OfClass returns a copy of one class's items, in insertion order. It used
// to return the live per-class backing slice — the same aliasing bug
// Reservoir.Items and Ring.Items had: a caller writing through the returned
// slice rewrote stored records behind the buffer's back. Quantized stores
// return the raw int8 records; decode the ones you touch with Dequantized.
func (b *ClassBalanced) OfClass(c int) []Item {
	return append([]Item(nil), b.byClass[c]...)
}

// Insert stores an item of its class, maintaining balance:
//   - while the buffer has free space, the item is appended;
//   - otherwise, if the item's class holds more than its fair share would
//     after insertion, a random same-class item is replaced;
//   - otherwise a random item of the largest class is evicted to make room,
//     shifting capacity toward under-represented classes.
//
// Returns the evicted item's class, or -1 if nothing was evicted.
func (b *ClassBalanced) Insert(it Item) int {
	if b.total < b.cap {
		if b.codec != nil {
			it = b.codec.Encode(it, nil)
		}
		b.byClass[it.Label] = append(b.byClass[it.Label], it)
		b.total++
		balancedFills.Add(1)
		return -1
	}
	own := b.byClass[it.Label]
	largest, largestN := -1, 0
	for c, items := range b.byClass {
		if len(items) > largestN || (len(items) == largestN && c < largest) {
			largest, largestN = c, len(items)
		}
	}
	if len(own) >= largestN {
		// Replace within the item's own class.
		vi := b.rng.Intn(len(own))
		if b.codec != nil {
			it = b.codec.Encode(it, own[vi].QZ)
		}
		own[vi] = it
		balancedHits.Add(1)
		return it.Label
	}
	// Evict from the largest class, then append.
	victims := b.byClass[largest]
	vi := b.rng.Intn(len(victims))
	if b.codec != nil {
		it = b.codec.Encode(it, victims[vi].QZ)
	}
	victims[vi] = victims[len(victims)-1]
	b.byClass[largest] = victims[:len(victims)-1]
	b.byClass[it.Label] = append(b.byClass[it.Label], it)
	balancedEvicts.Add(1)
	return largest
}

// ReplaceRandomOfClass swaps a uniformly random same-class item for it,
// returning false when the class is absent (callers then fall back to
// Insert). This is the paper's long-term replacement primitive.
func (b *ClassBalanced) ReplaceRandomOfClass(it Item) bool {
	own := b.byClass[it.Label]
	if len(own) == 0 {
		return false
	}
	vi := b.rng.Intn(len(own))
	if b.codec != nil {
		it = b.codec.Encode(it, own[vi].QZ)
	}
	own[vi] = it
	balancedHits.Add(1)
	return true
}

// Export copies the contents in canonical order — ascending class, in-class
// insertion order preserved — for checkpointing. Feeding the result to
// SetContents on a fresh buffer reproduces the exact per-class layout, so
// every later seeded eviction draw lands on the same victim. Quantized
// stores export their raw int8 records (the canonical, bit-exact form);
// callers that need fp32 values decode with Dequantized.
func (b *ClassBalanced) Export() []Item {
	out := make([]Item, 0, b.total)
	for _, c := range b.Classes() {
		out = append(out, b.byClass[c]...)
	}
	return out
}

// SetContents replaces the buffer contents with items (grouped by their
// labels, preserving order within each class). Fails when items exceed the
// capacity; the buffer is untouched on error.
func (b *ClassBalanced) SetContents(items []Item) error {
	if len(items) > b.cap {
		return fmt.Errorf("replay: restoring %d items into capacity-%d class-balanced buffer", len(items), b.cap)
	}
	if err := checkDtype(items, b.codec != nil, "class-balanced buffer"); err != nil {
		return err
	}
	byClass := map[int][]Item{}
	for _, it := range items {
		byClass[it.Label] = append(byClass[it.Label], it)
	}
	b.byClass = byClass
	b.total = len(items)
	return nil
}

// Sample returns n items drawn uniformly (without replacement) from the
// whole buffer. The pool is assembled in ascending class order so a seeded
// rng draws the same items on every run (map iteration order is randomized).
func (b *ClassBalanced) Sample(n int) []Item {
	all := make([]Item, 0, b.total)
	for _, c := range b.Classes() {
		all = append(all, b.byClass[c]...)
	}
	out := sampleWithout(all, n, b.rng)
	if b.codec != nil {
		b.codec.decodeInto(out)
	}
	samplesDrawn.Add(int64(len(out)))
	return out
}

// SampleInto is Sample appending the drawn items to dst and returning it,
// with the pool assembly and index shuffle running on reusable internal
// scratch — allocation-free once warm. The pool order and RNG draw sequence
// are identical to Sample's.
func (b *ClassBalanced) SampleInto(dst []Item, n int) []Item {
	b.classBuf = b.classesInto(b.classBuf[:0])
	pool := b.poolBuf[:0]
	for _, c := range b.classBuf {
		pool = append(pool, b.byClass[c]...)
	}
	b.poolBuf = pool
	before := len(dst)
	dst, b.idxBuf = sampleWithoutInto(dst, b.idxBuf, pool, n, b.rng)
	if b.codec != nil {
		b.codec.decodeInto(dst[before:])
	}
	samplesDrawn.Add(int64(len(dst) - before))
	return dst
}

// ExportInto is Export appending into dst (same canonical ascending-class
// order), for callers that re-export every few steps and want the copy
// allocation-free.
func (b *ClassBalanced) ExportInto(dst []Item) []Item {
	b.classBuf = b.classesInto(b.classBuf[:0])
	for _, c := range b.classBuf {
		dst = append(dst, b.byClass[c]...)
	}
	return dst
}

// sampleWithout draws min(n, len(pool)) items without replacement via a
// partial Fisher–Yates shuffle of an index view.
func sampleWithout(pool []Item, n int, rng *rand.Rand) []Item {
	if n >= len(pool) {
		out := make([]Item, len(pool))
		copy(out, pool)
		return out
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, pool[idx[i]])
	}
	return out
}

// sampleWithoutInto is sampleWithout appending to dst, with the index view on
// caller-provided scratch (returned grown). The branch structure and draw
// sequence mirror sampleWithout exactly: the n >= len(pool) full-copy case
// consumes no RNG draws in either variant.
func sampleWithoutInto(dst []Item, idx []int, pool []Item, n int, rng *rand.Rand) ([]Item, []int) {
	if n >= len(pool) {
		return append(dst, pool...), idx
	}
	idx = idx[:0]
	for i := range pool {
		idx = append(idx, i)
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		dst = append(dst, pool[idx[i]])
	}
	return dst, idx
}
