package replay

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"chameleon/internal/quant"
	"chameleon/internal/race"
	"chameleon/internal/tensor"
)

// zItem builds an item with a random latent of the given dimension.
func zItem(rng *rand.Rand, label, dim int) Item {
	z := tensor.New(dim)
	for i := range z.Data() {
		z.Data()[i] = float32(rng.NormFloat64())
	}
	return Item{Z: z, Label: label}
}

// TestQuantizedReservoirDecodeMatchesReference pins the store's quantize →
// dequantize path against the quant package applied by hand: a drawn item's
// latent must be exactly DequantizeInt8(QuantizeInt8(original)), element for
// element, bit for bit.
func TestQuantizedReservoirDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := zItem(rng, 7, 33)
	want := make([]float32, orig.Z.Len())
	q := make([]int8, orig.Z.Len())
	s := quant.QuantizeInt8(q, orig.Z.Data())
	quant.DequantizeInt8(want, q, s)

	r := NewReservoir(1, rand.New(rand.NewSource(1)))
	if err := r.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	r.Offer(orig)
	got := r.Sample(1)
	if len(got) != 1 || got[0].Z == nil || got[0].Quantized() {
		t.Fatalf("sample did not decode: %+v", got)
	}
	for i, v := range got[0].Z.Data() {
		if math.Float32bits(v) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: decoded %x, reference %x", i, math.Float32bits(v), math.Float32bits(want[i]))
		}
	}
	if got[0].Label != 7 {
		t.Fatalf("label lost: %d", got[0].Label)
	}
}

// TestQuantizedStateGobRoundTripBitExact drives a quantized reservoir past
// capacity, pushes its state through gob (the checkpoint wire format), and
// requires the restored store to be indistinguishable: identical raw (QZ,
// Scale) records and bit-identical decoded latents on an identically seeded
// draw. Exporting the raw int8 records — never re-quantizing decoded values —
// is what makes this exact.
func TestQuantizedStateGobRoundTripBitExact(t *testing.T) {
	src := rand.New(rand.NewSource(11))
	a := NewReservoir(6, rand.New(rand.NewSource(5)))
	if err := a.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a.Offer(zItem(src, i%4, 16))
	}
	items, seen := a.State()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(items); err != nil {
		t.Fatal(err)
	}
	var decoded []Item
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, decoded) {
		t.Fatal("gob round trip changed the quantized records")
	}

	mk := func(state []Item) *Reservoir {
		r := NewReservoir(6, rand.New(rand.NewSource(99)))
		if err := r.EnableInt8(); err != nil {
			t.Fatal(err)
		}
		if err := r.SetState(state, seen); err != nil {
			t.Fatal(err)
		}
		return r
	}
	ra, rb := mk(items), mk(decoded)
	sa, sb := ra.Sample(4), rb.Sample(4)
	for i := range sa {
		da, db := sa[i].Z.Data(), sb[i].Z.Data()
		for j := range da {
			if math.Float32bits(da[j]) != math.Float32bits(db[j]) {
				t.Fatalf("draw %d element %d differs after checkpoint round trip", i, j)
			}
		}
	}
}

// TestQuantizedCrossDtypeRestoreErrors pins the dtype tag semantics of the
// checkpoint format: int8 records cannot restore into an fp32 store, fp32
// records cannot restore into an int8 store, and a failed restore leaves the
// target untouched. Legacy payloads (Z set, QZ nil) count as fp32.
func TestQuantizedCrossDtypeRestoreErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fp32Items := []Item{zItem(rng, 0, 8), zItem(rng, 1, 8)}
	qc := NewInt8Codec()
	int8Items := []Item{qc.Encode(zItem(rng, 0, 8), nil), qc.Encode(zItem(rng, 1, 8), nil)}

	plain := NewReservoir(4, rand.New(rand.NewSource(1)))
	if err := plain.SetState(int8Items, 2); err == nil {
		t.Fatal("int8 items restored into fp32 reservoir")
	}
	if plain.Len() != 0 {
		t.Fatal("failed restore mutated the reservoir")
	}
	if err := plain.SetState(fp32Items, 2); err != nil {
		t.Fatalf("fp32 restore into fp32 reservoir: %v", err)
	}

	quantized := NewReservoir(4, rand.New(rand.NewSource(1)))
	if err := quantized.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	if err := quantized.SetState(fp32Items, 2); err == nil {
		t.Fatal("fp32 items restored into int8 reservoir")
	}
	if err := quantized.SetState(int8Items, 2); err != nil {
		t.Fatalf("int8 restore into int8 reservoir: %v", err)
	}

	cb := NewClassBalanced(4, rand.New(rand.NewSource(1)))
	if err := cb.SetContents(int8Items); err == nil {
		t.Fatal("int8 items restored into fp32 class-balanced buffer")
	}
	cbq := NewClassBalanced(4, rand.New(rand.NewSource(1)))
	if err := cbq.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	if err := cbq.SetContents(fp32Items); err == nil {
		t.Fatal("fp32 items restored into int8 class-balanced buffer")
	}
	// Corrupt shape metadata must be rejected too.
	bad := append([]Item(nil), int8Items...)
	bad[0].ZShape = []int{3}
	if err := cbq.SetContents(bad); err == nil {
		t.Fatal("shape/buffer mismatch accepted")
	}
}

// TestQuantizedClassBalancedLifecycle drives a quantized class-balanced
// buffer through fill, same-class replacement, cross-class eviction, and
// sampling, checking the storage stays int8 at rest and fp32 on draw.
func TestQuantizedClassBalancedLifecycle(t *testing.T) {
	src := rand.New(rand.NewSource(21))
	b := NewClassBalanced(9, rand.New(rand.NewSource(4)))
	if err := b.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		b.Insert(zItem(src, i%3, 12))
	}
	if b.Len() != 9 {
		t.Fatalf("len %d", b.Len())
	}
	for i, it := range b.Export() {
		if !it.Quantized() || it.Z != nil {
			t.Fatalf("exported item %d not stored quantized", i)
		}
	}
	var scratch []Item
	scratch = b.SampleInto(scratch[:0], 5)
	for i, it := range scratch {
		if it.Quantized() || it.Z == nil {
			t.Fatalf("sampled item %d not decoded", i)
		}
	}
	if b.Dequantized(b.Export()[0], 0).Z == nil {
		t.Fatal("Dequantized did not decode an exported record")
	}
	if !b.ReplaceRandomOfClass(zItem(src, 1, 12)) {
		t.Fatal("ReplaceRandomOfClass failed on a present class")
	}
}

// TestQuantizedRingFIFO pins the ring variant: pushes encode, Items decodes.
func TestQuantizedRingFIFO(t *testing.T) {
	src := rand.New(rand.NewSource(8))
	r := NewRing(3)
	if err := r.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Push(zItem(src, i, 6))
	}
	items := r.Items()
	if len(items) != 3 {
		t.Fatalf("len %d", len(items))
	}
	for i, it := range items {
		if it.Z == nil || it.Quantized() {
			t.Fatalf("ring item %d not decoded", i)
		}
	}
}

// TestQuantizedEnableInt8RequiresEmpty pins the enable-before-use contract on
// all three stores.
func TestQuantizedEnableInt8RequiresEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(2, rand.New(rand.NewSource(1)))
	r.Offer(zItem(rng, 0, 4))
	if err := r.EnableInt8(); err == nil {
		t.Fatal("EnableInt8 accepted a non-empty reservoir")
	}
	g := NewRing(2)
	g.Push(zItem(rng, 0, 4))
	if err := g.EnableInt8(); err == nil {
		t.Fatal("EnableInt8 accepted a non-empty ring")
	}
	b := NewClassBalanced(2, rand.New(rand.NewSource(1)))
	b.Insert(zItem(rng, 0, 4))
	if err := b.EnableInt8(); err == nil {
		t.Fatal("EnableInt8 accepted a non-empty class-balanced buffer")
	}
}

// TestOfClassReturnsCopy is the regression pin for the aliasing bug: OfClass
// used to hand out the live per-class backing slice, so writing through the
// returned slice rewrote stored records. Mirrors the PR 7 Items() pins.
func TestOfClassReturnsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewClassBalanced(6, rand.New(rand.NewSource(1)))
	for i := 0; i < 6; i++ {
		b.Insert(zItem(rng, i%2, 4))
	}
	before := b.Export()
	got := b.OfClass(0)
	if len(got) == 0 {
		t.Fatal("class 0 missing")
	}
	for i := range got {
		got[i].Label = 999
		got[i].Z = nil
	}
	if !reflect.DeepEqual(before, b.Export()) {
		t.Fatal("mutating OfClass result corrupted the buffer")
	}
}

// TestAllocsQuantizedReservoirSteadyState pins the tentpole's allocation
// guarantee at the store level: once a quantized reservoir is warm (fill
// phase done, decode scratch and index buffers sized), an Offer + SampleInto
// cycle performs zero heap allocations — quantize-on-insert recycles the
// victim's int8 buffer and dequantize-on-draw reuses workspace scratch.
func TestAllocsQuantizedReservoirSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	src := rand.New(rand.NewSource(12))
	r := NewReservoir(20, rand.New(rand.NewSource(9)))
	if err := r.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	incoming := zItem(src, 1, 32)
	for i := 0; i < 60; i++ {
		r.Offer(zItem(src, i%4, 32))
	}
	var scratch []Item
	scratch = r.SampleInto(scratch[:0], 10) // warm decode slots + idxBuf
	got := testing.AllocsPerRun(100, func() {
		r.Offer(incoming)
		scratch = r.SampleInto(scratch[:0], 10)
	})
	if got != 0 {
		t.Fatalf("quantized offer+sample allocates %.1f times/op, want 0", got)
	}
}

// TestAllocsQuantizedClassBalancedSteadyState is the same pin for the
// class-balanced store Chameleon's long-term memory uses.
func TestAllocsQuantizedClassBalancedSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	src := rand.New(rand.NewSource(13))
	b := NewClassBalanced(20, rand.New(rand.NewSource(10)))
	if err := b.EnableInt8(); err != nil {
		t.Fatal(err)
	}
	incoming := zItem(src, 2, 32)
	for i := 0; i < 80; i++ {
		b.Insert(zItem(src, i%4, 32))
	}
	var scratch []Item
	scratch = b.SampleInto(scratch[:0], 10)
	got := testing.AllocsPerRun(100, func() {
		b.Insert(incoming)
		scratch = b.SampleInto(scratch[:0], 10)
	})
	if got != 0 {
		t.Fatalf("quantized insert+sample allocates %.1f times/op, want 0", got)
	}
}
