package replay_test

import (
	"fmt"
	"math/rand"
	"sort"

	"chameleon/internal/replay"
)

// A class-balanced buffer keeps every class represented even under a heavily
// skewed stream — the property Chameleon's long-term store relies on.
func ExampleClassBalanced() {
	rng := rand.New(rand.NewSource(1))
	buf := replay.NewClassBalanced(8, rng)
	// 97% of insertions are class 0.
	for i := 0; i < 1000; i++ {
		label := 0
		if i%33 == 0 {
			label = 1 + (i/33)%3
		}
		buf.Insert(replay.Item{Label: label})
	}
	classes := buf.Classes()
	sort.Ints(classes)
	fmt.Println("classes present:", classes)
	fmt.Println("fill:", buf.Len(), "/", buf.Cap())
	// Output:
	// classes present: [0 1 2 3]
	// fill: 8 / 8
}

// A reservoir holds a uniform sample of everything it has seen.
func ExampleReservoir() {
	rng := rand.New(rand.NewSource(2))
	buf := replay.NewReservoir(4, rng)
	for i := 0; i < 100; i++ {
		buf.Offer(replay.Item{Label: i})
	}
	fmt.Println("fill:", buf.Len(), "seen:", buf.Seen())
	// Output:
	// fill: 4 seen: 100
}
