package replay

import "chameleon/internal/obs"

// Buffer observability: fills (item entered free space), hits (an offered or
// inserted item replaced a stored one), rejections (reservoir skipped the
// item), evictions (class-balanced cross-class displacement) and sample
// draws. Handles live at package level so buffer operations stay a couple of
// atomic adds — the stores sit inside the per-sample training loop.
var (
	reservoirOffers = obs.Default().Counter("replay_reservoir_offers_total")
	reservoirFills  = obs.Default().Counter("replay_reservoir_fills_total")
	reservoirHits   = obs.Default().Counter("replay_reservoir_replacements_total")
	reservoirSkips  = obs.Default().Counter("replay_reservoir_rejections_total")
	balancedFills   = obs.Default().Counter("replay_classbalanced_fills_total")
	balancedHits    = obs.Default().Counter("replay_classbalanced_replacements_total")
	balancedEvicts  = obs.Default().Counter("replay_classbalanced_evictions_total")
	samplesDrawn    = obs.Default().Counter("replay_samples_drawn_total")
	ringPushes      = obs.Default().Counter("replay_ring_pushes_total")
	ringEvicts      = obs.Default().Counter("replay_ring_evictions_total")
)
