package replay

// Int8 storage tier for replay payloads. Latents are quantized on insert —
// int8 buffer plus one fp32 symmetric per-tensor scale, following Ravaglia et
// al.'s quantized latent replay — and dequantized on rehearsal into workspace
// scratch the codec owns, so the steady-state training loop stays at zero
// heap allocations while the store holds ~4× the samples per byte.

import (
	"fmt"

	"chameleon/internal/obs"
	"chameleon/internal/quant"
	"chameleon/internal/tensor"
)

var (
	int8Encodes = obs.Default().Counter("replay_int8_encodes_total")
	int8Decodes = obs.Default().Counter("replay_int8_decodes_total")
)

// Int8Codec converts items between the fp32 and int8 representations for one
// store. Each store owns its own codec (stores are single-writer, like the
// learners that own them), so decode scratch is never shared across
// goroutines. The scratch tensors come from a tensor.Workspace and persist
// across draws: slot i is reused by the next decode into slot i, which makes
// a decoded latent valid exactly until the store's next draw — the lifetime
// rehearsal needs, at zero steady-state allocations.
type Int8Codec struct {
	ws      *tensor.Workspace
	scratch []*tensor.Tensor
	shape   []int // canonical latent shape, shared by encoded items
}

// NewInt8Codec returns an empty codec.
func NewInt8Codec() *Int8Codec { return &Int8Codec{ws: tensor.NewWorkspace()} }

// Encode returns it with its latent quantized: QZ, Scale, and ZShape set and
// Z nil. Logits and GradSketch stay fp32 (DER's distillation targets and
// GSS's sketches are small and precision-sensitive). When recycle has the
// right length it is reused as the int8 buffer, so a steady-state eviction
// cycle — encode the newcomer into the victim's buffer — allocates nothing.
// Items without a latent, or already quantized, pass through unchanged.
func (c *Int8Codec) Encode(it Item, recycle []int8) Item {
	if it.Z == nil {
		return it
	}
	data := it.Z.Data()
	q := recycle
	if len(q) != len(data) {
		q = make([]int8, len(data))
	}
	it.Scale = quant.QuantizeInt8(q, data)
	it.QZ = q
	it.ZShape = c.shapeFor(it.Z)
	it.Z = nil
	int8Encodes.Add(1)
	return it
}

// shapeFor returns the codec's canonical shape slice when it matches z (the
// common case: every latent in a store has the model's latent shape), so
// encoded items share one slice instead of allocating per insert.
func (c *Int8Codec) shapeFor(z *tensor.Tensor) []int {
	s := z.Shape()
	if c.shape == nil {
		c.shape = append([]int(nil), s...)
	}
	if shapeEqual(c.shape, s) {
		return c.shape
	}
	return append([]int(nil), s...)
}

// Decode returns it with Z pointing at the dequantized values in the codec's
// slot'th scratch tensor and the quantized fields cleared, so a decoded item
// is indistinguishable from an fp32 one. Decoding a second item into the same
// slot overwrites the first's values — callers assign one slot per item of a
// draw and consume the batch before the next draw.
func (c *Int8Codec) Decode(it Item, slot int) Item {
	if it.QZ == nil {
		return it
	}
	for len(c.scratch) <= slot {
		c.scratch = append(c.scratch, nil)
	}
	t := c.scratch[slot]
	if t == nil || !shapeEqual(t.Shape(), it.ZShape) {
		c.ws.Put(t) // nil-safe; a same-length buffer comes straight back out
		t = c.ws.Get(it.ZShape...)
		c.scratch[slot] = t
	}
	quant.DequantizeInt8(t.Data(), it.QZ, it.Scale)
	it.Z = t
	it.QZ, it.Scale, it.ZShape = nil, 0, nil
	int8Decodes.Add(1)
	return it
}

// DecodeAlloc is Decode into a fresh tensor — the cold-path variant Items()
// uses so returned copies never alias codec scratch.
func (c *Int8Codec) DecodeAlloc(it Item) Item {
	if it.QZ == nil {
		return it
	}
	t := tensor.New(it.ZShape...)
	quant.DequantizeInt8(t.Data(), it.QZ, it.Scale)
	it.Z = t
	it.QZ, it.Scale, it.ZShape = nil, 0, nil
	int8Decodes.Add(1)
	return it
}

// decodeInto rewrites items in place, decoding each into its own slot.
func (c *Int8Codec) decodeInto(items []Item) {
	for i := range items {
		items[i] = c.Decode(items[i], i)
	}
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDtype validates restored items against the store's dtype: an int8
// store accepts only quantized items and an fp32 store only plain ones, so a
// cross-dtype restore errors instead of silently mixing representations.
// Legacy (pre-int8) checkpoints carry QZ == nil on every item — gob leaves
// absent fields at their zero value — so they decode as fp32 naturally.
// Quantized items are also shape-checked against their buffers, matching the
// hostile-gob hardening of the fp32 restore paths.
// CheckDtype validates a restored item list against a store's dtype: a
// quantized store requires every item to carry an int8 payload with coherent
// shape metadata, an fp32 store rejects any quantized item. The stores'
// SetState/SetContents paths call this internally; it is exported for
// learners that keep their own []Item buffers (Latent Replay, GSS) so their
// restore paths enforce the same cross-dtype errors.
func CheckDtype(items []Item, quantized bool, store string) error {
	return checkDtype(items, quantized, store)
}

func checkDtype(items []Item, quantized bool, store string) error {
	for i, it := range items {
		switch {
		case quantized && it.QZ == nil:
			return fmt.Errorf("replay: fp32 item %d restored into int8 %s (cross-dtype restore)", i, store)
		case !quantized && it.QZ != nil:
			return fmt.Errorf("replay: int8 item %d restored into fp32 %s (cross-dtype restore)", i, store)
		}
		if it.QZ == nil {
			continue
		}
		if it.Z != nil {
			return fmt.Errorf("replay: item %d carries both fp32 and int8 payloads", i)
		}
		n := 1
		for _, d := range it.ZShape {
			if d <= 0 {
				n = -1
				break
			}
			n *= d
		}
		if len(it.ZShape) == 0 || n != len(it.QZ) {
			return fmt.Errorf("replay: quantized item %d shape %v does not match %d-byte buffer", i, it.ZShape, len(it.QZ))
		}
	}
	return nil
}
