package core

import (
	"math/rand"
	"time"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/obs"
	"chameleon/internal/tensor"
)

// Float wraps a float64 hyper-parameter value for Config's optional fields,
// where nil means "paper default" and an explicit pointer — including
// Float(0) — is honoured as configured.
func Float(v float64) *float64 { return &v }

// Config collects Chameleon's hyper-parameters. Zero values select the
// paper's defaults (adjusted for the laptop-scale streams). Alpha, Beta and
// Rho are pointers because 0 is a meaningful configured value for each (the
// ablations sweep them to 0); nil selects the default.
type Config struct {
	// STCap is the short-term store capacity (paper: 10).
	STCap int
	// LTCap is the long-term store capacity (paper: 100–1500).
	LTCap int
	// AccessRate is h, the long-term *read* period in batches (paper: 10 —
	// M_l is rehearsed every ten batches to respect the on-chip/off-chip
	// traffic trade-off).
	AccessRate int
	// PromoteEvery is the long-term *write* period in batches. The paper
	// couples writes to h; shorter streams need faster fills to reach the
	// same buffer-fill fraction as the paper's 165k-sample runs, so the
	// experiment scales set this to 1. Defaults to AccessRate.
	PromoteEvery int
	// LTSampleSize is |m̂_l|, the rehearsal mini-batch drawn from M_l
	// (paper: iterative mini-batch concatenation at the stream batch size).
	LTSampleSize int
	// Alpha and Beta weight the allocation and uncertainty terms of Eq. 4
	// (nil: both default to 1; α=β=0 yields the random-selection ablation).
	Alpha, Beta *float64
	// Rho is the allocation exponent of Eq. 2 (nil: 0.6; ρ=0 is the
	// indifference ablation, Δ_k = 1/2).
	Rho *float64
	// TopK is the preferred-class count k (paper: 5).
	TopK int
	// Window is the preference learning window in samples (paper: ~1500).
	Window int
	// RandomPromotion replaces the Eq. 6 prototype-KL promotion with a
	// uniformly random pick from the short-term store (ablation only).
	RandomPromotion bool
	// IterativeLT uses the paper's iterative mini-batch concatenation for
	// long-term rehearsal (a rotating cursor covering the whole store over
	// successive accesses) instead of uniform sampling.
	IterativeLT bool
	// ReplayInt8 stores both replay memories as int8 latents with a
	// symmetric per-tensor scale (quantize on insert, dequantize on
	// rehearsal): ~4× the samples per byte at the same budget, following
	// Ravaglia et al.'s quantized latent replay.
	ReplayInt8 bool
	// Meter, when non-nil, counts the replay-buffer traffic of the run
	// (short-term = on-chip, long-term = off-chip).
	Meter *cl.TrafficMeter
	// Obs is the metrics registry receiving the per-stage step
	// instrumentation; nil selects the process default registry.
	Obs *obs.Registry
	// Seed drives the learner's internal randomness.
	Seed int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.STCap <= 0 {
		c.STCap = 10
	}
	if c.LTCap <= 0 {
		c.LTCap = 100
	}
	if c.AccessRate <= 0 {
		c.AccessRate = 10
	}
	if c.PromoteEvery <= 0 {
		c.PromoteEvery = c.AccessRate
	}
	if c.LTSampleSize <= 0 {
		c.LTSampleSize = 10
	}
	if c.Alpha == nil {
		c.Alpha = Float(1)
	}
	if c.Beta == nil {
		c.Beta = Float(1)
	}
	if c.Rho == nil {
		c.Rho = Float(0.6)
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.Window <= 0 {
		c.Window = 1500
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	return c
}

// Chameleon is the paper's dual-memory replay learner (Algorithm 1).
type Chameleon struct {
	cfg Config
	// alpha and beta are the resolved Eq. 4 weights (cfg holds pointers).
	alpha, beta float64
	head        *cl.Head
	tracker     *PreferenceTracker
	st          *ShortTermStore
	lt          *LongTermStore
	rng         *rand.Rand
	// src is rng's counting source, so the stream position checkpoints.
	src     *checkpoint.Source
	batches int
	// stepBuf, mbBuf, uncertBuf and labelBuf are per-Observe assembly
	// buffers, reused across batches (a learner serves one sequential run).
	stepBuf   []cl.LatentSample
	mbBuf     []cl.LatentSample
	uncertBuf []float64
	labelBuf  []int
	// met holds the pre-resolved per-stage metric handles.
	met stepMetrics
}

// New creates a Chameleon learner over a fresh trainable head.
func New(head *cl.Head, cfg Config) *Chameleon {
	cfg = cfg.withDefaults()
	rng, src := cl.RNGSource(cfg.Seed, 0xC0FFEE)
	st := NewShortTermStore(cfg.STCap, rng)
	lt := NewLongTermStore(cfg.LTCap, rng)
	if cfg.ReplayInt8 {
		// Both stores are empty here, so enabling cannot fail.
		if err := st.EnableInt8(); err != nil {
			panic(err)
		}
		if err := lt.EnableInt8(); err != nil {
			panic(err)
		}
	}
	return &Chameleon{
		cfg:     cfg,
		alpha:   *cfg.Alpha,
		beta:    *cfg.Beta,
		head:    head,
		tracker: NewPreferenceTracker(cfg.TopK, *cfg.Rho, cfg.Window),
		st:      st,
		lt:      lt,
		rng:     rng,
		src:     src,
		met:     newStepMetrics(cfg.Obs),
	}
}

// Name implements cl.Learner.
func (c *Chameleon) Name() string { return "chameleon" }

// Predict implements cl.Learner.
func (c *Chameleon) Predict(z *tensor.Tensor) int { return c.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (c *Chameleon) PredictBatch(zs []*tensor.Tensor, out []int) { c.head.PredictBatch(zs, out) }

// Head exposes the trainable head (hardware profiling reads its shape).
func (c *Chameleon) Head() *cl.Head { return c.head }

// ShortTerm exposes M_s for inspection (examples, tests).
func (c *Chameleon) ShortTerm() *ShortTermStore { return c.st }

// LongTerm exposes M_l for inspection.
func (c *Chameleon) LongTerm() *LongTermStore { return c.lt }

// Tracker exposes the preference tracker.
func (c *Chameleon) Tracker() *PreferenceTracker { return c.tracker }

// Observe implements Algorithm 1 for one incoming batch B_t:
//
//	① update running class statistics (preference estimation),
//	② (feature extraction — already done by the pipeline),
//	③ train g on Z_t ∪ M_s, plus a long-term mini-batch every h cycles,
//	④ refresh M_s with the Eq. 4 user-aware uncertainty selection,
//	⑤ every h cycles, promote the Eq. 6 max-divergence sample into M_l.
func (c *Chameleon) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	t0 := time.Now()
	// ① preference estimation.
	for _, s := range b.Samples {
		c.tracker.Observe(s.Label)
	}
	// Uncertainty scores need the *pre-update* logits; capture them first so
	// the subsequent weight update does not bias selection (Eq. 3).
	if cap(c.uncertBuf) < len(b.Samples) {
		c.uncertBuf = make([]float64, len(b.Samples))
		c.labelBuf = make([]int, len(b.Samples))
	}
	uncert := c.uncertBuf[:len(b.Samples)]
	labels := c.labelBuf[:len(b.Samples)]
	tExtract := time.Now()
	for i, s := range b.Samples {
		uncert[i] = Uncertainty(c.head.Logits(s.Z), s.Label)
		labels[i] = s.Label
	}
	c.met.extract.ObserveSince(tExtract)

	// ③ weight update. The paper trains with batch size one and ten replay
	// elements per incoming input: each new sample takes one SGD step jointly
	// with a sweep of the complete short-term memory. The long-term store
	// contributes one extra rehearsal mini-batch every h cycles. Concat
	// (batch assembly) and SGD time accumulate across the per-sample loop and
	// are observed once per Observe so histogram counts stay per-batch.
	var concatNS, sgdNS time.Duration
	for _, s := range b.Samples {
		tc := time.Now()
		step := append(c.stepBuf[:0], s)
		step = append(step, c.st.Items()...)
		c.stepBuf = step
		c.cfg.Meter.AddOnChip(int64(c.st.Len()), 0)
		ts := time.Now()
		concatNS += ts.Sub(tc)
		c.head.TrainCEOn(step)
		sgdNS += time.Since(ts)
	}
	if c.batches%c.cfg.AccessRate == 0 && c.lt.Len() > 0 {
		var mb []cl.LatentSample
		tc := time.Now()
		if c.cfg.IterativeLT {
			mb = c.lt.NextMinibatchInto(c.mbBuf[:0], c.cfg.LTSampleSize)
		} else {
			mb = c.lt.SampleInto(c.mbBuf[:0], c.cfg.LTSampleSize)
		}
		c.mbBuf = mb
		c.cfg.Meter.AddOffChip(int64(len(mb)), 0)
		ts := time.Now()
		concatNS += ts.Sub(tc)
		c.head.TrainCEOn(mb)
		sgdNS += time.Since(ts)
		c.met.mlRehearse.Add(1)
	}
	c.met.concat.Observe(concatNS.Seconds())
	c.met.sgd.Observe(sgdNS.Seconds())

	// ④ short-term refresh (Eq. 4).
	tMs := time.Now()
	probs := SelectionProbs(c.tracker, uncert, labels, c.alpha, c.beta)
	filling := c.st.Len() < c.st.Cap()
	if c.st.Update(b.Samples, probs) >= 0 {
		c.cfg.Meter.AddOnChip(0, 1)
		if filling {
			c.met.msFills.Add(1)
		} else {
			c.met.msEvicts.Add(1)
		}
	}
	c.met.msUpdate.ObserveSince(tMs)

	// ⑤ long-term promotion every PromoteEvery cycles (Eq. 5–6).
	if c.batches%c.cfg.PromoteEvery == 0 && c.st.Len() > 0 {
		tMl := time.Now()
		if c.cfg.RandomPromotion {
			c.lt.PromoteIndex(c.st.Items(), c.rng.Intn(c.st.Len()))
		} else {
			c.lt.Promote(c.st.Items(), c.head.Probs)
		}
		c.cfg.Meter.AddOffChip(0, 1)
		c.met.mlPromotes.Add(1)
		c.met.mlPromote.ObserveSince(tMl)
	}
	c.batches++
	c.met.msSize.Set(float64(c.st.Len()))
	c.met.mlSize.Set(float64(c.lt.Len()))
	c.met.steps.Add(1)
	c.met.stepTotal.ObserveSince(t0)
}
