package core

import (
	"fmt"
	"math"
	"math/rand"

	"chameleon/internal/cl"
	"chameleon/internal/quant"
	"chameleon/internal/tensor"
)

// ShortTermStore is Chameleon's on-chip replay buffer M_s: tiny (paper: 10
// samples ≈ 0.3 MB of latents), swept in full at every training step, and
// refreshed once per incoming batch with the user-aware uncertainty-guided
// selection of Eq. 4.
type ShortTermStore struct {
	cap   int
	items []cl.LatentSample
	rng   *rand.Rand
	// Quantized mode (EnableInt8): qz/scales hold each slot's canonical int8
	// representation — the bytes that exist at rest and in checkpoints —
	// while items[i].Z points at a persistent per-slot tensor carrying the
	// dequantized values. Training therefore still sweeps Items() as a free
	// live slice, and a slot refresh re-quantizes in place: zero steady-state
	// allocations either way.
	quantized bool
	qz        [][]int8
	scales    []float32
}

// QuantSample is the checkpoint representation of one quantized short-term
// sample: the int8 payload, its symmetric per-tensor scale and latent shape,
// plus the sample metadata. The fp32 values a restored learner trains on are
// a pure function of (QZ, Scale), which is what makes the save/restore cycle
// bit-exact.
type QuantSample struct {
	QZ     []int8
	Scale  float32
	ZShape []int
	Label  int
	Domain int
	ID     int
}

// EnableInt8 switches the store to quantized storage; it must be called
// while the store is still empty.
func (s *ShortTermStore) EnableInt8() error {
	if len(s.items) > 0 {
		return fmt.Errorf("core: EnableInt8 on a non-empty short-term store (%d items)", len(s.items))
	}
	s.quantized = true
	return nil
}

// Quantized reports whether the store holds int8 latents.
func (s *ShortTermStore) Quantized() bool { return s.quantized }

// NewShortTermStore creates an M_s with the given capacity (paper: 10).
func NewShortTermStore(capacity int, rng *rand.Rand) *ShortTermStore {
	if capacity <= 0 {
		capacity = 10
	}
	return &ShortTermStore{cap: capacity, rng: rng}
}

// Len returns the current fill.
func (s *ShortTermStore) Len() int { return len(s.items) }

// Cap returns the capacity.
func (s *ShortTermStore) Cap() int { return s.cap }

// Items returns the live contents (the "sweep the complete short-term
// memory" training set). Callers must not mutate.
func (s *ShortTermStore) Items() []cl.LatentSample { return s.items }

// SetItems replaces the contents with a copy of items (fp32 checkpoint
// restore). A quantized store rejects non-empty fp32 state — the cross-dtype
// restore error; its own state travels through QuantState/SetQuantState.
func (s *ShortTermStore) SetItems(items []cl.LatentSample) error {
	if len(items) > s.cap {
		return fmt.Errorf("core: restoring %d items into capacity-%d short-term store", len(items), s.cap)
	}
	if s.quantized && len(items) > 0 {
		return fmt.Errorf("core: fp32 short-term state restored into int8 store (cross-dtype restore)")
	}
	s.items = append(s.items[:0:0], items...)
	s.qz = s.qz[:0]
	s.scales = s.scales[:0]
	return nil
}

// QuantState exports the quantized contents for checkpointing (nil for fp32
// stores). The returned records reference the live int8 buffers; callers
// serialize them before the next Update, as with every State export.
func (s *ShortTermStore) QuantState() []QuantSample {
	if !s.quantized {
		return nil
	}
	out := make([]QuantSample, len(s.items))
	for i, it := range s.items {
		out[i] = QuantSample{
			QZ:     s.qz[i],
			Scale:  s.scales[i],
			ZShape: it.Z.Shape(),
			Label:  it.Label,
			Domain: it.Domain,
			ID:     it.ID,
		}
	}
	return out
}

// SetQuantState restores contents captured by QuantState, rebuilding each
// slot's dequantized tensor from the int8 payload. An fp32 store rejects it
// (cross-dtype restore); hostile shape metadata is rejected before anything
// is mutated.
func (s *ShortTermStore) SetQuantState(items []QuantSample) error {
	if !s.quantized {
		return fmt.Errorf("core: int8 short-term state restored into fp32 store (cross-dtype restore)")
	}
	if len(items) > s.cap {
		return fmt.Errorf("core: restoring %d items into capacity-%d short-term store", len(items), s.cap)
	}
	for i, it := range items {
		n := 1
		for _, d := range it.ZShape {
			if d <= 0 {
				n = -1
				break
			}
			n *= d
		}
		if len(it.ZShape) == 0 || n != len(it.QZ) {
			return fmt.Errorf("core: quantized short-term item %d shape %v does not match %d-byte buffer", i, it.ZShape, len(it.QZ))
		}
		if math.IsNaN(float64(it.Scale)) || math.IsInf(float64(it.Scale), 0) {
			return fmt.Errorf("core: quantized short-term item %d has non-finite scale", i)
		}
	}
	s.items = s.items[:0]
	s.qz = s.qz[:0]
	s.scales = s.scales[:0]
	for _, it := range items {
		z := tensor.New(it.ZShape...)
		quant.DequantizeInt8(z.Data(), it.QZ, it.Scale)
		s.items = append(s.items, cl.LatentSample{Z: z, Label: it.Label, Domain: it.Domain, ID: it.ID})
		s.qz = append(s.qz, append([]int8(nil), it.QZ...))
		s.scales = append(s.scales, it.Scale)
	}
	return nil
}

// Uncertainty computes U_i (Eq. 3) for a sample: the absolute logit response
// at the true class, |o(x_i)·y|. Low U_i means the model is uncertain, so
// selection uses U_i⁻¹.
func Uncertainty(logits *tensor.Tensor, label int) float64 {
	return math.Abs(float64(logits.Data()[label]))
}

// SelectionProbs implements Eq. 4: for each batch element it combines the
// normalised allocation weight Δ_i with the normalised inverse uncertainty
// U_i⁻¹, mixed by α and β, and returns a probability distribution over the
// batch.
func SelectionProbs(tracker *PreferenceTracker, uncertainties []float64, labels []int, alpha, beta float64) []float64 {
	n := len(labels)
	probs := make([]float64, n)
	if n == 0 {
		return probs
	}
	// Normalised allocation term: Δ_i / Σ_j Δ_j (the paper's denominator sums
	// Δ_k over preferred and 1−Δ_k over non-preferred batch members).
	alloc := make([]float64, n)
	var allocZ float64
	for i, y := range labels {
		alloc[i] = tracker.AllocationWeight(y)
		allocZ += alloc[i]
	}
	// Normalised inverse-uncertainty term, clamped to keep U⁻¹ finite. A
	// non-finite uncertainty must not reach the normalizer: a single NaN
	// logit would make invZ NaN, silently dropping (or poisoning) the whole
	// Eq. 4 uncertainty term — and a NaN in the returned distribution makes
	// the CDF walk in sampleIndex deterministically pick the last batch
	// element. A NaN response carries no uncertainty signal, so the sample is
	// excluded from this term; +Inf (a saturated logit means maximal
	// certainty) contributes 1/Inf = 0 naturally.
	const minU = 1e-3
	invU := make([]float64, n)
	var invZ float64
	for i, u := range uncertainties {
		switch {
		case math.IsNaN(u):
			invU[i] = 0
		case u < minU: // Uncertainty is |logit| ≥ 0, but clamp defensively.
			invU[i] = 1 / minU
		default:
			invU[i] = 1 / u
		}
		invZ += invU[i]
	}
	var z float64
	for i := range probs {
		p := 0.0
		if allocZ > 0 {
			p += alpha * alloc[i] / allocZ
		}
		if invZ > 0 {
			p += beta * invU[i] / invZ
		}
		probs[i] = p
		z += p
	}
	// Degenerate or non-finite weights (α/β abuse, overflow): uniform.
	if !(z > 0) || math.IsInf(z, 0) {
		for i := range probs {
			probs[i] = 1 / float64(n)
		}
		return probs
	}
	for i := range probs {
		probs[i] /= z
	}
	return probs
}

// Update performs the per-batch M_s refresh (Algorithm 1, lines 8–10):
// draw one element b_t from the batch according to probs and replace a
// uniformly random stored sample with it (or append while below capacity).
// It returns the index of the chosen batch element.
func (s *ShortTermStore) Update(batch []cl.LatentSample, probs []float64) int {
	if len(batch) == 0 {
		return -1
	}
	chosen := sampleIndex(probs, s.rng)
	if len(s.items) < s.cap {
		if s.quantized {
			s.appendQuantized(batch[chosen])
		} else {
			s.items = append(s.items, batch[chosen])
		}
		return chosen
	}
	victim := s.rng.Intn(len(s.items))
	if s.quantized {
		s.storeQuantized(victim, batch[chosen])
	} else {
		s.items[victim] = batch[chosen]
	}
	return chosen
}

// appendQuantized grows the store by one quantized slot (fill phase: the
// slot tensor and int8 buffer are allocated once and reused forever after).
func (s *ShortTermStore) appendQuantized(sm cl.LatentSample) {
	slot := sm
	slot.Z = tensor.New(sm.Z.Shape()...)
	s.items = append(s.items, slot)
	s.qz = append(s.qz, make([]int8, sm.Z.Len()))
	s.scales = append(s.scales, 0)
	s.requantize(len(s.items)-1, sm.Z)
}

// storeQuantized refreshes slot i with a new sample, quantizing into the
// slot's existing buffers — the zero-allocation steady-state path.
func (s *ShortTermStore) storeQuantized(i int, sm cl.LatentSample) {
	if len(s.qz[i]) != sm.Z.Len() {
		// Latent shape changed (never in a configured run): rebuild the slot.
		s.qz[i] = make([]int8, sm.Z.Len())
		s.items[i].Z = tensor.New(sm.Z.Shape()...)
	}
	slot := sm
	slot.Z = s.items[i].Z
	s.items[i] = slot
	s.requantize(i, sm.Z)
}

// requantize writes slot i's int8 representation from src and materialises
// the dequantized values the trainer sweeps. The store's fp32 view is always
// the decode of its int8 payload — never the raw incoming values — so what
// the learner rehearses is exactly what a checkpoint round trip reproduces.
func (s *ShortTermStore) requantize(i int, src *tensor.Tensor) {
	s.scales[i] = quant.QuantizeInt8(s.qz[i], src.Data())
	quant.DequantizeInt8(s.items[i].Z.Data(), s.qz[i], s.scales[i])
}

// Remove deletes the stored sample at index i (used when promoting to the
// long-term store would otherwise duplicate it; the paper keeps the sample,
// so Chameleon calls this only in ablation variants).
func (s *ShortTermStore) Remove(i int) {
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.items = s.items[:last]
	if s.quantized {
		s.qz[i] = s.qz[last]
		s.qz = s.qz[:last]
		s.scales[i] = s.scales[last]
		s.scales = s.scales[:last]
	}
}

// sampleIndex draws an index from a (possibly unnormalised) distribution.
// Non-finite or negative weights are treated as zero mass: a NaN entry used
// to make the normalizer NaN, so `z <= 0` evaluated false, r = rng·NaN was
// NaN, every `r < acc` comparison failed, and the walk deterministically
// returned the last index — silently biasing Eq. 4 selection toward the last
// batch element. When no usable mass remains the draw falls back to uniform.
func sampleIndex(probs []float64, rng *rand.Rand) int {
	usable := func(p float64) bool { return p > 0 && !math.IsInf(p, 1) }
	var z float64
	for _, p := range probs {
		if usable(p) {
			z += p
		}
	}
	if !(z > 0) || math.IsInf(z, 1) {
		return rng.Intn(len(probs))
	}
	r := rng.Float64() * z
	acc := 0.0
	last := len(probs) - 1
	for i, p := range probs {
		if !usable(p) {
			continue
		}
		acc += p
		last = i
		if r < acc {
			return i
		}
	}
	// Floating-point round-off: return the last index that carried mass.
	return last
}
