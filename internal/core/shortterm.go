package core

import (
	"fmt"
	"math"
	"math/rand"

	"chameleon/internal/cl"
	"chameleon/internal/tensor"
)

// ShortTermStore is Chameleon's on-chip replay buffer M_s: tiny (paper: 10
// samples ≈ 0.3 MB of latents), swept in full at every training step, and
// refreshed once per incoming batch with the user-aware uncertainty-guided
// selection of Eq. 4.
type ShortTermStore struct {
	cap   int
	items []cl.LatentSample
	rng   *rand.Rand
}

// NewShortTermStore creates an M_s with the given capacity (paper: 10).
func NewShortTermStore(capacity int, rng *rand.Rand) *ShortTermStore {
	if capacity <= 0 {
		capacity = 10
	}
	return &ShortTermStore{cap: capacity, rng: rng}
}

// Len returns the current fill.
func (s *ShortTermStore) Len() int { return len(s.items) }

// Cap returns the capacity.
func (s *ShortTermStore) Cap() int { return s.cap }

// Items returns the live contents (the "sweep the complete short-term
// memory" training set). Callers must not mutate.
func (s *ShortTermStore) Items() []cl.LatentSample { return s.items }

// SetItems replaces the contents with a copy of items (checkpoint restore).
func (s *ShortTermStore) SetItems(items []cl.LatentSample) error {
	if len(items) > s.cap {
		return fmt.Errorf("core: restoring %d items into capacity-%d short-term store", len(items), s.cap)
	}
	s.items = append(s.items[:0:0], items...)
	return nil
}

// Uncertainty computes U_i (Eq. 3) for a sample: the absolute logit response
// at the true class, |o(x_i)·y|. Low U_i means the model is uncertain, so
// selection uses U_i⁻¹.
func Uncertainty(logits *tensor.Tensor, label int) float64 {
	return math.Abs(float64(logits.Data()[label]))
}

// SelectionProbs implements Eq. 4: for each batch element it combines the
// normalised allocation weight Δ_i with the normalised inverse uncertainty
// U_i⁻¹, mixed by α and β, and returns a probability distribution over the
// batch.
func SelectionProbs(tracker *PreferenceTracker, uncertainties []float64, labels []int, alpha, beta float64) []float64 {
	n := len(labels)
	probs := make([]float64, n)
	if n == 0 {
		return probs
	}
	// Normalised allocation term: Δ_i / Σ_j Δ_j (the paper's denominator sums
	// Δ_k over preferred and 1−Δ_k over non-preferred batch members).
	alloc := make([]float64, n)
	var allocZ float64
	for i, y := range labels {
		alloc[i] = tracker.AllocationWeight(y)
		allocZ += alloc[i]
	}
	// Normalised inverse-uncertainty term, clamped to keep U⁻¹ finite. A
	// non-finite uncertainty must not reach the normalizer: a single NaN
	// logit would make invZ NaN, silently dropping (or poisoning) the whole
	// Eq. 4 uncertainty term — and a NaN in the returned distribution makes
	// the CDF walk in sampleIndex deterministically pick the last batch
	// element. A NaN response carries no uncertainty signal, so the sample is
	// excluded from this term; +Inf (a saturated logit means maximal
	// certainty) contributes 1/Inf = 0 naturally.
	const minU = 1e-3
	invU := make([]float64, n)
	var invZ float64
	for i, u := range uncertainties {
		switch {
		case math.IsNaN(u):
			invU[i] = 0
		case u < minU: // Uncertainty is |logit| ≥ 0, but clamp defensively.
			invU[i] = 1 / minU
		default:
			invU[i] = 1 / u
		}
		invZ += invU[i]
	}
	var z float64
	for i := range probs {
		p := 0.0
		if allocZ > 0 {
			p += alpha * alloc[i] / allocZ
		}
		if invZ > 0 {
			p += beta * invU[i] / invZ
		}
		probs[i] = p
		z += p
	}
	// Degenerate or non-finite weights (α/β abuse, overflow): uniform.
	if !(z > 0) || math.IsInf(z, 0) {
		for i := range probs {
			probs[i] = 1 / float64(n)
		}
		return probs
	}
	for i := range probs {
		probs[i] /= z
	}
	return probs
}

// Update performs the per-batch M_s refresh (Algorithm 1, lines 8–10):
// draw one element b_t from the batch according to probs and replace a
// uniformly random stored sample with it (or append while below capacity).
// It returns the index of the chosen batch element.
func (s *ShortTermStore) Update(batch []cl.LatentSample, probs []float64) int {
	if len(batch) == 0 {
		return -1
	}
	chosen := sampleIndex(probs, s.rng)
	if len(s.items) < s.cap {
		s.items = append(s.items, batch[chosen])
		return chosen
	}
	victim := s.rng.Intn(len(s.items))
	s.items[victim] = batch[chosen]
	return chosen
}

// Remove deletes the stored sample at index i (used when promoting to the
// long-term store would otherwise duplicate it; the paper keeps the sample,
// so Chameleon calls this only in ablation variants).
func (s *ShortTermStore) Remove(i int) {
	s.items[i] = s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
}

// sampleIndex draws an index from a (possibly unnormalised) distribution.
// Non-finite or negative weights are treated as zero mass: a NaN entry used
// to make the normalizer NaN, so `z <= 0` evaluated false, r = rng·NaN was
// NaN, every `r < acc` comparison failed, and the walk deterministically
// returned the last index — silently biasing Eq. 4 selection toward the last
// batch element. When no usable mass remains the draw falls back to uniform.
func sampleIndex(probs []float64, rng *rand.Rand) int {
	usable := func(p float64) bool { return p > 0 && !math.IsInf(p, 1) }
	var z float64
	for _, p := range probs {
		if usable(p) {
			z += p
		}
	}
	if !(z > 0) || math.IsInf(z, 1) {
		return rng.Intn(len(probs))
	}
	r := rng.Float64() * z
	acc := 0.0
	last := len(probs) - 1
	for i, p := range probs {
		if !usable(p) {
			continue
		}
		acc += p
		last = i
		if r < acc {
			return i
		}
	}
	// Floating-point round-off: return the last index that carried mass.
	return last
}
