package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/data"
)

// newTestChameleon builds a Chameleon with momentum (the optimizer state that
// a naive weights-only snapshot would lose) over the shared tiny env.
func newTestChameleon(set *cl.LatentSet, seed int64, meter *cl.TrafficMeter) *Chameleon {
	return New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Momentum: 0.5, Seed: seed}),
		Config{STCap: 5, LTCap: 10, AccessRate: 2, PromoteEvery: 1, Window: 20, Meter: meter, Seed: seed})
}

// decodeState unpacks a snapshot payload for semantic comparison. Raw
// snapshot bytes are NOT comparable (gob randomizes map encoding order), so
// equality checks must run on the decoded structs.
func decodeState(t *testing.T, raw []byte) chameleonState {
	t.Helper()
	var st chameleonState
	if err := checkpoint.Decode(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChameleonSnapshotRestoreMidStream snapshots a learner mid-stream,
// restores into a fresh instance, then drives both over the identical tail;
// every piece of final state must match exactly.
func TestChameleonSnapshotRestoreMidStream(t *testing.T) {
	set := buildEnv(t)
	const splitAt = 7

	a := newTestChameleon(set, 21, nil)
	stA := set.Stream(21, data.StreamOptions{BatchSize: 5})
	var tail []cl.LatentBatch
	for i := 0; ; i++ {
		b, ok := stA.Next()
		if !ok {
			break
		}
		if i < splitAt {
			a.Observe(b)
		} else {
			tail = append(tail, b)
		}
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b := newTestChameleon(set, 21, nil)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, batch := range tail {
		a.Observe(batch)
		b.Observe(batch)
	}

	rawA, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	finalA, finalB := decodeState(t, rawA), decodeState(t, rawB)
	if !reflect.DeepEqual(finalA, finalB) {
		t.Fatalf("restored learner diverged from original:\n%+v\nvs\n%+v", finalA, finalB)
	}
	for _, s := range set.Test {
		if a.Predict(s.Z) != b.Predict(s.Z) {
			t.Fatalf("predictions diverged on test sample %d", s.ID)
		}
	}
}

// TestChameleonKillAndResumeBitIdentical is the end-to-end crash contract: a
// run killed at batch k and resumed from its checkpoint file must finish with
// the same accuracy, buffer contents, RNG position and traffic counts as the
// uninterrupted seeded run.
func TestChameleonKillAndResumeBitIdentical(t *testing.T) {
	set := buildEnv(t)
	const seed = 33
	opts := data.StreamOptions{BatchSize: 5}

	// Uninterrupted reference run.
	refMeter := &cl.TrafficMeter{}
	ref := newTestChameleon(set, seed, refMeter)
	refRes := cl.RunOnline(ref, set.Stream(seed, opts), set.Test)
	refState := decodeState(t, mustSnapshot(t, ref))

	for _, killAt := range []int{1, 5, 11} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		// Phase 1: crash at batch killAt (state saved, ErrStopped returned).
		crashMeter := &cl.TrafficMeter{}
		crashed := newTestChameleon(set, seed, crashMeter)
		_, err := cl.RunOnlineCheckpointed(crashed, set.Stream(seed, opts), set.Test,
			cl.CheckpointPlan{Path: path, Every: 1, Meter: crashMeter, StopAfter: killAt})
		if err != cl.ErrStopped {
			t.Fatalf("killAt=%d: expected ErrStopped, got %v", killAt, err)
		}
		// Phase 2: a fresh process resumes from the file.
		resMeter := &cl.TrafficMeter{}
		resumed := newTestChameleon(set, seed, resMeter)
		res, err := cl.RunOnlineCheckpointed(resumed, set.Stream(seed, opts), set.Test,
			cl.CheckpointPlan{Path: path, Every: 1, Resume: true, Meter: resMeter})
		if err != nil {
			t.Fatalf("killAt=%d: resume failed: %v", killAt, err)
		}
		if res.AccAll != refRes.AccAll {
			t.Fatalf("killAt=%d: resumed accuracy %v != uninterrupted %v", killAt, res.AccAll, refRes.AccAll)
		}
		if res.SamplesSeen != refRes.SamplesSeen {
			t.Fatalf("killAt=%d: samples %d != %d", killAt, res.SamplesSeen, refRes.SamplesSeen)
		}
		if resMeter.Counts() != refMeter.Counts() {
			t.Fatalf("killAt=%d: traffic diverged:\nresumed %s\nref     %s", killAt, resMeter, refMeter)
		}
		if got := decodeState(t, mustSnapshot(t, resumed)); !reflect.DeepEqual(got, refState) {
			t.Fatalf("killAt=%d: final learner state diverged from uninterrupted run", killAt)
		}
	}
}

func mustSnapshot(t *testing.T, c *Chameleon) []byte {
	t.Helper()
	raw, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChameleonRestoreRejectsBadState: garbage bytes and capacity mismatches
// must error, never panic or silently misload.
func TestChameleonRestoreRejectsBadState(t *testing.T) {
	set := buildEnv(t)
	c := newTestChameleon(set, 40, nil)
	st := set.Stream(40, data.StreamOptions{BatchSize: 5})
	for i := 0; i < 6; i++ {
		b, ok := st.Next()
		if !ok {
			break
		}
		c.Observe(b)
	}
	if err := c.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	snap := mustSnapshot(t, c)
	// A learner with smaller stores cannot hold this state.
	tiny := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 40}),
		Config{STCap: 1, LTCap: 2, AccessRate: 2, Window: 20, Seed: 40})
	if err := tiny.Restore(snap); err == nil {
		t.Fatal("snapshot restored into undersized stores")
	}
}
