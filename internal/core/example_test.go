package core_test

import (
	"fmt"

	"chameleon/internal/core"
)

// The preference tracker estimates the user's top-k classes over a learning
// window and exposes the Eq. 2 allocation factor.
func ExamplePreferenceTracker() {
	tracker := core.NewPreferenceTracker(1, 1.0, 4)
	for _, label := range []int{3, 3, 3, 9} {
		tracker.Observe(label)
	}
	fmt.Println("preferred:", tracker.Preferred())
	fmt.Printf("delta: %.2f\n", tracker.Delta())
	// Output:
	// preferred: [3]
	// delta: 0.75
}

// SelectionProbs mixes the user-allocation and inverse-uncertainty terms of
// Eq. 4 into a sampling distribution over the incoming batch.
func ExampleSelectionProbs() {
	tracker := core.NewPreferenceTracker(1, 1.0, 2)
	tracker.Observe(0)
	tracker.Observe(0) // class 0 becomes the sole preferred class
	// Two candidates with equal uncertainty: preference decides.
	probs := core.SelectionProbs(tracker, []float64{1, 1}, []int{0, 1}, 1, 0)
	fmt.Printf("%.2f\n", probs)
	// Output: [1.00 0.00]
}
