package core

import "chameleon/internal/obs"

// stepMetrics bundles the per-stage instrumentation of Algorithm 1. Handles
// are resolved once per learner at construction (get-or-create on the
// registry), so Observe's hot path only touches atomics — the instrumented
// step stays allocation-free (DESIGN.md §12).
//
// Phase histograms follow the step's data path:
//
//	chameleon_step_extract_seconds    pre-update logit capture (Eq. 3 scores)
//	chameleon_step_concat_seconds     incoming ∪ M_s (∪ m̂_l) batch assembly
//	chameleon_step_sgd_seconds        the joint SGD updates
//	chameleon_step_ms_update_seconds  Eq. 4 short-term refresh
//	chameleon_step_ml_promote_seconds Eq. 5–6 long-term promotion
type stepMetrics struct {
	steps      *obs.Counter
	stepTotal  *obs.Histogram
	extract    *obs.Histogram
	concat     *obs.Histogram
	sgd        *obs.Histogram
	msUpdate   *obs.Histogram
	mlPromote  *obs.Histogram
	msSize     *obs.Gauge
	mlSize     *obs.Gauge
	msFills    *obs.Counter
	msEvicts   *obs.Counter
	mlRehearse *obs.Counter
	mlPromotes *obs.Counter
}

func newStepMetrics(r *obs.Registry) stepMetrics {
	return stepMetrics{
		steps:      r.Counter("chameleon_steps_total"),
		stepTotal:  r.Histogram("chameleon_step_seconds"),
		extract:    r.Histogram("chameleon_step_extract_seconds"),
		concat:     r.Histogram("chameleon_step_concat_seconds"),
		sgd:        r.Histogram("chameleon_step_sgd_seconds"),
		msUpdate:   r.Histogram("chameleon_step_ms_update_seconds"),
		mlPromote:  r.Histogram("chameleon_step_ml_promote_seconds"),
		msSize:     r.Gauge("chameleon_ms_size"),
		mlSize:     r.Gauge("chameleon_ml_size"),
		msFills:    r.Counter("chameleon_ms_fills_total"),
		msEvicts:   r.Counter("chameleon_ms_evictions_total"),
		mlRehearse: r.Counter("chameleon_ml_rehearsal_batches_total"),
		mlPromotes: r.Counter("chameleon_ml_promotions_total"),
	}
}
