package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
	"chameleon/internal/tensor"
)

func TestPreferenceTrackerRecalibration(t *testing.T) {
	p := NewPreferenceTracker(2, 0.8, 10)
	if p.Delta() != 0.5 {
		t.Fatalf("initial delta = %v", p.Delta())
	}
	// Window of 10: classes 0 and 1 dominate.
	seq := []int{0, 0, 0, 1, 1, 1, 2, 3, 0, 1}
	for _, y := range seq {
		p.Observe(y)
	}
	if !p.IsPreferred(0) || !p.IsPreferred(1) {
		t.Fatalf("preferred = %v", p.Preferred())
	}
	if p.IsPreferred(2) {
		t.Fatal("class 2 should not be preferred")
	}
	if p.Delta() <= 0.5 || p.Delta() > 1 {
		t.Fatalf("delta = %v, want in (0.5, 1]", p.Delta())
	}
	if p.NumSeen() != 4 {
		t.Fatalf("NumSeen = %d", p.NumSeen())
	}
}

func TestPreferenceTrackerAdaptsToDrift(t *testing.T) {
	p := NewPreferenceTracker(1, 0.6, 6)
	for i := 0; i < 6; i++ {
		p.Observe(0)
	}
	if !p.IsPreferred(0) {
		t.Fatal("class 0 should be preferred after first window")
	}
	for i := 0; i < 6; i++ {
		p.Observe(7)
	}
	if !p.IsPreferred(7) || p.IsPreferred(0) {
		t.Fatalf("tracker did not adapt: preferred=%v", p.Preferred())
	}
}

// TestPreferenceTrackerRhoExtremes pins the Eq. 2 endpoints: ρ=0 must ignore
// the counts entirely (Δ_k = 1/2, every class treated equally — the
// documented indifference ablation), ρ=1 must allocate proportionally.
func TestPreferenceTrackerRhoExtremes(t *testing.T) {
	p0 := NewPreferenceTracker(1, 0, 4)
	for _, y := range []int{0, 0, 0, 1} {
		p0.Observe(y)
	}
	if math.Abs(p0.Delta()-0.5) > 1e-9 {
		t.Fatalf("rho=0 delta = %v, want 0.5 (indifference)", p0.Delta())
	}
	// At ρ=0 preferred and non-preferred classes get identical allocation
	// weight — that is what "treats all classes equally" means operationally.
	if w0, w1 := p0.AllocationWeight(0), p0.AllocationWeight(1); math.Abs(w0-w1) > 1e-9 {
		t.Fatalf("rho=0 allocation weights differ: preferred %v vs rest %v", w0, w1)
	}
	// ρ=1 ⇒ Δ = n_k/(n_k+n_rest), proportional allocation.
	p1 := NewPreferenceTracker(1, 1, 4)
	for _, y := range []int{0, 0, 0, 1} {
		p1.Observe(y)
	}
	want := 3.0 / 4.0
	if math.Abs(p1.Delta()-want) > 1e-9 {
		t.Fatalf("rho=1 delta = %v, want %v", p1.Delta(), want)
	}
}

// TestPreferenceTrackerRecalibrationBoundary exercises the exact window
// boundary: recalibration must fire on the Window-th observation precisely
// (not one early, not one late), and equal-count classes must tie-break
// toward the smaller class index when filling the top-k.
func TestPreferenceTrackerRecalibrationBoundary(t *testing.T) {
	p := NewPreferenceTracker(2, 1, 6)
	// Five observations: still inside the first window, nothing calibrated.
	for _, y := range []int{4, 4, 9, 9, 2} {
		p.Observe(y)
		if len(p.Preferred()) != 0 || p.Delta() != 0.5 {
			t.Fatalf("recalibrated before the window filled: preferred=%v delta=%v", p.Preferred(), p.Delta())
		}
	}
	// The sixth observation fills the window exactly: counts 4:2, 9:2, 2:1,
	// 7:1. Top-2 by count with ties broken toward the smaller class must pick
	// {4, 9}; among the rest, 2 and 7 tie as well.
	p.Observe(7)
	got := p.Preferred()
	if len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("preferred after exact window = %v, want [4 9]", got)
	}
	// nK = 2, nRest = 1, ρ=1 ⇒ Δ = 2/3.
	if want := 2.0 / 3.0; math.Abs(p.Delta()-want) > 1e-9 {
		t.Fatalf("delta = %v, want %v", p.Delta(), want)
	}
	// Window statistics must have reset for the next window.
	if p.NumSeen() != 4 {
		t.Fatalf("NumSeen = %d, want 4", p.NumSeen())
	}
	// A full second window of a new class flips the preference, proving the
	// first window's counts were cleared rather than carried over.
	for i := 0; i < 6; i++ {
		p.Observe(1)
	}
	if got := p.Preferred(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("second window preferred = %v, want [1]", got)
	}
}

func TestAllocationWeight(t *testing.T) {
	p := NewPreferenceTracker(1, 1, 2)
	p.Observe(0)
	p.Observe(0)
	if w := p.AllocationWeight(0); math.Abs(w-1) > 1e-9 {
		t.Fatalf("preferred weight = %v", w)
	}
	if w := p.AllocationWeight(5); math.Abs(w) > 1e-9 {
		t.Fatalf("non-preferred weight = %v", w)
	}
}

func TestUncertainty(t *testing.T) {
	logits := tensor.FromSlice([]float32{-2, 0.1, 3}, 3)
	if got := Uncertainty(logits, 0); got != 2 {
		t.Fatalf("U = %v", got)
	}
	if got := Uncertainty(logits, 1); math.Abs(got-0.1) > 1e-6 {
		t.Fatalf("U = %v", got)
	}
}

func TestSelectionProbsIsDistribution(t *testing.T) {
	f := func(seedRaw uint32) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		p := NewPreferenceTracker(2, 0.7, 8)
		for i := 0; i < 8; i++ {
			p.Observe(rng.Intn(4))
		}
		n := 1 + rng.Intn(9)
		u := make([]float64, n)
		labels := make([]int, n)
		for i := range u {
			u[i] = rng.Float64() * 5
			labels[i] = rng.Intn(4)
		}
		probs := SelectionProbs(p, u, labels, rng.Float64()*2, rng.Float64()*2)
		var z float64
		for _, pr := range probs {
			if pr < 0 || math.IsNaN(pr) {
				return false
			}
			z += pr
		}
		return math.Abs(z-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionProbsFavorsUncertainAndPreferred(t *testing.T) {
	p := NewPreferenceTracker(1, 1, 4)
	for i := 0; i < 4; i++ {
		p.Observe(0) // class 0 strongly preferred, delta -> 1
	}
	labels := []int{0, 1}
	// Equal uncertainty: the preferred class must get higher probability.
	probs := SelectionProbs(p, []float64{1, 1}, labels, 1, 1)
	if probs[0] <= probs[1] {
		t.Fatalf("preferred class not favored: %v", probs)
	}
	// Pure uncertainty (alpha=0): the more uncertain (lower U) sample wins.
	probs = SelectionProbs(p, []float64{5, 0.1}, labels, 0, 1)
	if probs[1] <= probs[0] {
		t.Fatalf("uncertain sample not favored: %v", probs)
	}
	// Degenerate weights fall back to uniform.
	probs = SelectionProbs(p, []float64{1, 1}, labels, 0, 0)
	if math.Abs(probs[0]-0.5) > 1e-9 {
		t.Fatalf("expected uniform fallback: %v", probs)
	}
}

func zOf(v float32) *tensor.Tensor { return tensor.FromSlice([]float32{v, -v}, 2) }

func TestShortTermStoreFillAndReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := NewShortTermStore(3, rng)
	for i := 0; i < 3; i++ {
		st.Update([]cl.LatentSample{{Z: zOf(float32(i)), Label: i}}, []float64{1})
	}
	if st.Len() != 3 {
		t.Fatalf("len = %d", st.Len())
	}
	st.Update([]cl.LatentSample{{Z: zOf(9), Label: 9}}, []float64{1})
	if st.Len() != 3 {
		t.Fatal("replace grew the store")
	}
	found := false
	for _, it := range st.Items() {
		if it.Label == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("replacement sample not stored")
	}
}

func TestShortTermStoreRespectsProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := NewShortTermStore(1, rng)
	batch := []cl.LatentSample{{Z: zOf(0), Label: 0}, {Z: zOf(1), Label: 1}}
	counts := [2]int{}
	for i := 0; i < 200; i++ {
		chosen := st.Update(batch, []float64{0.9, 0.1})
		counts[chosen]++
	}
	if counts[0] < 140 {
		t.Fatalf("selection ignores probabilities: %v", counts)
	}
}

func TestLongTermPrototypeIsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lt := NewLongTermStore(4, rng)
	if lt.Prototype(0) != nil {
		t.Fatal("prototype of empty class should be nil")
	}
	id := func(z *tensor.Tensor) *tensor.Tensor { return tensor.Softmax(z) }
	lt.Promote([]cl.LatentSample{{Z: zOf(1), Label: 0}}, id)
	lt.Promote([]cl.LatentSample{{Z: zOf(3), Label: 0}}, id)
	proto := lt.Prototype(0)
	if math.Abs(float64(proto.Data()[0])-2) > 1e-6 {
		t.Fatalf("prototype = %v, want mean 2", proto.Data())
	}
}

func TestLongTermPromotePicksMaxDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lt := NewLongTermStore(8, rng)
	probs := func(z *tensor.Tensor) *tensor.Tensor { return tensor.Softmax(z) }
	// Seed class 0 with a consensus around z=1.
	lt.Promote([]cl.LatentSample{{Z: zOf(1), Label: 0}}, probs)
	lt.Promote([]cl.LatentSample{{Z: zOf(1.1), Label: 0}}, probs)
	// Candidate A agrees with the prototype; candidate B diverges strongly.
	cands := []cl.LatentSample{
		{Z: zOf(1.05), Label: 0},
		{Z: zOf(-4), Label: 0},
	}
	if got := lt.Promote(cands, probs); got != 1 {
		t.Fatalf("promoted candidate %d, want the divergent one (1)", got)
	}
}

func TestLongTermScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lt := NewLongTermStore(4, rng)
	probs := func(z *tensor.Tensor) *tensor.Tensor { return tensor.Softmax(z) }
	// Unknown class scores exactly 1 (maximally novel).
	if s := lt.Score(cl.LatentSample{Z: zOf(0), Label: 3}, probs); s != 1 {
		t.Fatalf("novel-class score = %v", s)
	}
	lt.Promote([]cl.LatentSample{{Z: zOf(2), Label: 0}}, probs)
	s := lt.Score(cl.LatentSample{Z: zOf(2), Label: 0}, probs)
	if s < 0 || s > 1 {
		t.Fatalf("score out of [0,1]: %v", s)
	}
	if s > 1e-6 {
		t.Fatalf("identical sample should score ~0, got %v", s)
	}
}

func TestLongTermNextMinibatchCyclesWholeStore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lt := NewLongTermStore(6, rng)
	probs := func(z *tensor.Tensor) *tensor.Tensor { return tensor.Softmax(z) }
	for i := 0; i < 6; i++ {
		lt.Promote([]cl.LatentSample{{Z: zOf(float32(i)), Label: i % 3}}, probs)
	}
	if got := lt.NextMinibatch(0); got != nil {
		t.Fatal("n<=0 should return nil")
	}
	seen := map[float32]int{}
	for i := 0; i < 3; i++ {
		for _, s := range lt.NextMinibatch(2) {
			seen[s.Z.Data()[0]]++
		}
	}
	// Six draws over a six-item store must cover every item exactly once.
	if len(seen) != 6 {
		t.Fatalf("iterative minibatch did not cover the store: %v", seen)
	}
	for _, n := range seen {
		if n != 1 {
			t.Fatalf("iterative minibatch repeated items before wrap: %v", seen)
		}
	}
	// A request larger than the store is clamped: one rehearsal minibatch
	// never contains the same sample twice (it would double-weight it in the
	// SGD step).
	got := lt.NextMinibatch(7)
	if len(got) != 6 {
		t.Fatalf("oversized minibatch size %d, want clamped to 6", len(got))
	}
	dup := map[float32]bool{}
	for _, s := range got {
		if dup[s.Z.Data()[0]] {
			t.Fatalf("minibatch repeats an item: %v", got)
		}
		dup[s.Z.Data()[0]] = true
	}
}

func TestChameleonIterativeLTOption(t *testing.T) {
	set := buildEnv(t)
	ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 6}),
		Config{STCap: 5, LTCap: 10, AccessRate: 1, PromoteEvery: 1, Window: 30, IterativeLT: true, Seed: 6})
	st := set.Stream(6, data.StreamOptions{BatchSize: 5})
	res := cl.RunOnline(ch, st, set.Test)
	// This exercises the iterative rehearsal code path end to end; the tiny
	// random-feature env only supports a loose sanity floor.
	if res.AccAll < 0.1 {
		t.Fatalf("iterative-LT chameleon collapsed: %v", res.AccAll)
	}
	if ch.LongTerm().Len() == 0 {
		t.Fatal("long-term store never filled")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.STCap != 10 || c.LTCap != 100 || c.AccessRate != 10 || c.TopK != 5 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if *c.Alpha != 1 || *c.Beta != 1 || *c.Rho != 0.6 || c.Window != 1500 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit pure-uncertainty config must survive defaulting.
	c2 := Config{Alpha: Float(0), Beta: Float(2)}.withDefaults()
	if *c2.Alpha != 0 || *c2.Beta != 2 {
		t.Fatalf("explicit alpha/beta overridden: %+v", c2)
	}
	// Zero is a valid configured value for every optional float: ρ=0 (the
	// indifference ablation) and α=β=0 (the random-selection ablation) must
	// not be rewritten to the paper defaults.
	c3 := Config{Alpha: Float(0), Beta: Float(0), Rho: Float(0)}.withDefaults()
	if *c3.Alpha != 0 || *c3.Beta != 0 || *c3.Rho != 0 {
		t.Fatalf("explicit zeros overridden: alpha=%v beta=%v rho=%v", *c3.Alpha, *c3.Beta, *c3.Rho)
	}
}

// TestChameleonRhoZeroRunsEndToEnd is the regression test for the ρ=0
// ablation: the configured zero must reach the tracker (not be rewritten to
// the 0.6 default) and the learner must train normally under indifference.
func TestChameleonRhoZeroRunsEndToEnd(t *testing.T) {
	set := buildEnv(t)
	ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 9}),
		Config{STCap: 5, LTCap: 10, AccessRate: 2, PromoteEvery: 1, Window: 20, Rho: Float(0), Seed: 9})
	if ch.Tracker().Rho != 0 {
		t.Fatalf("configured rho=0 rewritten to %v", ch.Tracker().Rho)
	}
	st := set.Stream(9, data.StreamOptions{BatchSize: 5})
	res := cl.RunOnline(ch, st, set.Test)
	if res.AccAll < 0.1 {
		t.Fatalf("rho=0 chameleon collapsed: %v", res.AccAll)
	}
	// After at least one full window the tracker must sit at indifference.
	if math.Abs(ch.Tracker().Delta()-0.5) > 1e-9 {
		t.Fatalf("rho=0 delta = %v, want 0.5", ch.Tracker().Delta())
	}
}

// buildEnv creates a tiny latent set for end-to-end learner tests.
func buildEnv(t *testing.T) *cl.LatentSet {
	t.Helper()
	dcfg := data.Config{
		Name: "tiny", NumClasses: 5, NumDomains: 4, TestDomains: []int{3},
		Resolution: 16, SessionsPerClassDomain: 1, FramesPerSession: 6,
		TestFramesPerClassDomain: 4, Severity: 1.0, Seed: 11,
	}
	ds, err := data.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mobilenet.Config{Width: 0.25, Resolution: 16, NumClasses: 5, LatentLayer: 13, Head: mobilenet.HeadMLP, HiddenDim: 24, Seed: 7}
	m, err := mobilenet.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := cl.NewLatentSet(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestChameleonEndToEndBeatsChance(t *testing.T) {
	set := buildEnv(t)
	ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 1}),
		Config{STCap: 5, LTCap: 20, AccessRate: 5, Window: 30, Seed: 1})
	st := set.Stream(1, data.StreamOptions{BatchSize: 5})
	res := cl.RunOnline(ch, st, set.Test)
	if res.AccAll < 0.35 {
		t.Fatalf("chameleon acc = %v, want well above 0.2 chance", res.AccAll)
	}
	if ch.ShortTerm().Len() == 0 || ch.LongTerm().Len() == 0 {
		t.Fatal("stores never filled")
	}
}

func TestChameleonDeterministicGivenSeed(t *testing.T) {
	set := buildEnv(t)
	run := func() float64 {
		ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 2}),
			Config{STCap: 5, LTCap: 20, AccessRate: 5, Window: 30, Seed: 2})
		st := set.Stream(2, data.StreamOptions{BatchSize: 5})
		return cl.RunOnline(ch, st, set.Test).AccAll
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestChameleonLongTermStaysClassBalanced(t *testing.T) {
	set := buildEnv(t)
	ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 3}),
		Config{STCap: 5, LTCap: 10, AccessRate: 2, PromoteEvery: 1, Window: 20, Seed: 3})
	st := set.Stream(3, data.StreamOptions{BatchSize: 5})
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		ch.Observe(b)
	}
	lt := ch.LongTerm()
	if lt.Len() != 10 {
		t.Fatalf("LT fill = %d", lt.Len())
	}
	// With 5 classes and capacity 10 nobody should hoard the buffer.
	for _, c := range lt.Classes() {
		n := len(lt.Sample(100)) // sanity of Sample
		_ = n
		if got := lt.Prototype(c); got == nil {
			t.Fatalf("class %d present but prototype nil", c)
		}
	}
}

func TestChameleonTrafficMeter(t *testing.T) {
	set := buildEnv(t)
	meter := &cl.TrafficMeter{}
	h := 5
	ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 7}),
		Config{STCap: 5, LTCap: 20, AccessRate: h, PromoteEvery: 1, Window: 30, Meter: meter, Seed: 7})
	st := set.Stream(7, data.StreamOptions{BatchSize: 5})
	batches := 0
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		ch.Observe(b)
		batches++
	}
	counts := meter.Counts()
	if counts.OnChipReads == 0 || counts.OnChipWrites == 0 {
		t.Fatalf("short-term traffic not counted: %s", meter)
	}
	if counts.OffChipReads == 0 || counts.OffChipWrites == 0 {
		t.Fatalf("long-term traffic not counted: %s", meter)
	}
	// One ST write per batch; one LT write per batch (PromoteEvery=1).
	if counts.OnChipWrites != int64(batches) || counts.OffChipWrites != int64(batches) {
		t.Fatalf("write counts: %s over %d batches", meter, batches)
	}
	// LT reads happen only every h batches, so off-chip reads must be far
	// below on-chip reads (the paper's whole point).
	if counts.OffChipReads*2 > counts.OnChipReads {
		t.Fatalf("off-chip reads (%d) not amortised vs on-chip (%d)", counts.OffChipReads, counts.OnChipReads)
	}
}

func TestChameleonObserveEmptyBatchIsNoop(t *testing.T) {
	set := buildEnv(t)
	ch := New(cl.NewHead(set.Backbone, cl.HeadConfig{Seed: 4}), Config{Seed: 4})
	ch.Observe(cl.LatentBatch{})
	if ch.ShortTerm().Len() != 0 || ch.LongTerm().Len() != 0 {
		t.Fatal("empty batch mutated state")
	}
}
