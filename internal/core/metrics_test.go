package core

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/obs"
	"chameleon/internal/parallel"
)

// TestMetricsScrapeDuringTraining hammers every export surface — the HTTP
// /metrics and /vars endpoints plus direct Report/WritePrometheus calls —
// while a learner trains with an 8-worker pool. Run under -race (check.sh
// does) this is the proof that live scraping is safe against concurrent
// mutation from the training loop, the pool's spawned shards, and the bound
// traffic meter.
func TestMetricsScrapeDuringTraining(t *testing.T) {
	set := buildEnv(t)
	parallel.SetWorkers(8)
	t.Cleanup(func() { parallel.SetWorkers(0) })

	srv, err := obs.Default().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(url string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(url)
			if err != nil {
				continue // listener teardown races the last loop turn
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && len(body) == 0 {
				t.Error("empty scrape response")
				return
			}
		}
	}
	wg.Add(2)
	go scrape("http://" + srv.Addr() + "/metrics")
	go scrape("http://" + srv.Addr() + "/vars")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := obs.Default().WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			_ = obs.Default().Report()
		}
	}()

	meter := &cl.TrafficMeter{}
	meter.Bind(obs.Default())
	learner := newTestChameleon(set, 51, meter)
	res := cl.RunOnline(learner, set.Stream(51, data.StreamOptions{BatchSize: 5}), set.Test)
	close(stop)
	wg.Wait()

	if res.SamplesSeen == 0 {
		t.Fatal("run processed no samples")
	}
	rep := obs.Default().Report()
	if rep.Counters["chameleon_steps_total"] == 0 {
		t.Fatal("no trainer steps recorded")
	}
	if rep.Histograms["chameleon_step_sgd_seconds"].Count == 0 {
		t.Fatal("no SGD phase observations recorded")
	}
	if rep.Gauges["traffic_onchip_read_items"] == 0 {
		t.Fatal("bound traffic meter not visible in scrape")
	}
}

// TestInstrumentationEquivalence proves the observability layer is pure
// measurement: a run with 8 workers and a scraper hammering the registry must
// finish with bit-identical learner state, predictions and traffic counts to
// a serial, unscraped run of the same seed.
func TestInstrumentationEquivalence(t *testing.T) {
	set := buildEnv(t)
	opts := data.StreamOptions{BatchSize: 5}
	const seed = 77

	run := func(workers int, scraped bool) (cl.Result, chameleonState, cl.TrafficCounts) {
		parallel.SetWorkers(workers)
		t.Cleanup(func() { parallel.SetWorkers(0) })
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if scraped {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sb strings.Builder
					_ = obs.Default().WritePrometheus(&sb)
				}
			}()
		}
		meter := &cl.TrafficMeter{}
		learner := newTestChameleon(set, seed, meter)
		res := cl.RunOnline(learner, set.Stream(seed, opts), set.Test)
		close(stop)
		wg.Wait()
		return res, decodeState(t, mustSnapshot(t, learner)), meter.Counts()
	}

	refRes, refState, refCounts := run(1, false)
	gotRes, gotState, gotCounts := run(8, true)

	if gotRes.AccAll != refRes.AccAll || gotRes.SamplesSeen != refRes.SamplesSeen {
		t.Fatalf("results diverged: %+v vs %+v", gotRes, refRes)
	}
	if !reflect.DeepEqual(gotRes.PerClass, refRes.PerClass) {
		t.Fatalf("per-class accuracy diverged:\n%v\nvs\n%v", gotRes.PerClass, refRes.PerClass)
	}
	if gotCounts != refCounts {
		t.Fatalf("traffic diverged: %+v vs %+v", gotCounts, refCounts)
	}
	if !reflect.DeepEqual(gotState, refState) {
		t.Fatal("final learner state diverged between workers=1 and workers=8+scrape")
	}
}
