// Package core implements Chameleon, the paper's contribution: a dual-memory
// replay continual learner with an on-chip short-term store (user-aware
// uncertainty sampling, Eq. 2–4) and an off-chip long-term store
// (class-prototype KL sampling, Eq. 5–6), trained by Algorithm 1.
package core

import (
	"math"
	"sort"
)

// PreferenceTracker estimates user preferences on-device by tracking the
// running class frequencies n_c over a learning window (paper step ①). At
// the end of each window it re-calibrates the top-k preferred classes and the
// allocation factor Δ_k (Eq. 2), so the tracker adapts to changing user
// inclination.
type PreferenceTracker struct {
	// TopK is the number of preferred classes (paper: k = 5).
	TopK int
	// Rho is the allocation exponent ρ ∈ [0,1] of Eq. 2: 0 treats all classes
	// equally (Δ_k = 1/2, matching the pre-calibration indifference value),
	// 1 allocates proportionally to running frequencies.
	Rho float64
	// Window is the learning-window length in samples (paper: ~1500 images).
	Window int

	counts    map[int]int
	inWindow  int
	preferred map[int]bool
	delta     float64
	// everSeen tracks all classes encountered so far (N in the paper).
	everSeen map[int]bool
}

// NewPreferenceTracker creates a tracker. Until the first window completes,
// every class is treated as non-preferred and Δ_k falls back to 0.5
// (indifference).
func NewPreferenceTracker(topK int, rho float64, window int) *PreferenceTracker {
	if topK <= 0 {
		topK = 5
	}
	if window <= 0 {
		window = 1500
	}
	if rho < 0 {
		rho = 0
	}
	if rho > 1 {
		rho = 1
	}
	return &PreferenceTracker{
		TopK: topK, Rho: rho, Window: window,
		counts:    map[int]int{},
		preferred: map[int]bool{},
		delta:     0.5,
		everSeen:  map[int]bool{},
	}
}

// Observe records one incoming label (paper Algorithm 1, line 3). When the
// learning window fills, the preferred set and Δ_k are re-calibrated and the
// window statistics reset.
func (p *PreferenceTracker) Observe(label int) {
	p.counts[label]++
	p.everSeen[label] = true
	p.inWindow++
	if p.inWindow >= p.Window {
		p.recalibrate()
	}
}

// recalibrate implements Eq. 2 over the finished window.
func (p *PreferenceTracker) recalibrate() {
	type cc struct {
		class, n int
	}
	ranked := make([]cc, 0, len(p.counts))
	for c, n := range p.counts {
		ranked = append(ranked, cc{c, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].class < ranked[j].class
	})
	k := p.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	p.preferred = map[int]bool{}
	var nK float64 // average running frequency of the preferred classes
	for i := 0; i < k; i++ {
		p.preferred[ranked[i].class] = true
		nK += float64(ranked[i].n)
	}
	if k > 0 {
		nK /= float64(k)
	}
	var nRest float64 // average frequency of the remaining classes
	rest := len(ranked) - k
	if rest > 0 {
		for i := k; i < len(ranked); i++ {
			nRest += float64(ranked[i].n)
		}
		nRest /= float64(rest)
	}
	// Eq. 2: Δ_k = n_k^ρ / (n_k^ρ + n_{N−k}^ρ). The tempered-softmax form
	// interpolates between indifference and proportional allocation: ρ=0
	// gives Δ_k = 1/2 exactly (x^0 = 1 for both terms, so counts are
	// ignored), ρ=1 gives Δ_k = n_k/(n_k+n_rest).
	if nK+nRest > 0 {
		wK, wRest := math.Pow(nK, p.Rho), math.Pow(nRest, p.Rho)
		p.delta = wK / (wK + wRest)
	} else {
		p.delta = 0.5
	}
	p.counts = map[int]int{}
	p.inWindow = 0
}

// Delta returns the current allocation factor Δ_k.
func (p *PreferenceTracker) Delta() float64 { return p.delta }

// IsPreferred reports whether the class is in the current top-k set.
func (p *PreferenceTracker) IsPreferred(class int) bool { return p.preferred[class] }

// Preferred returns the current preferred classes, sorted.
func (p *PreferenceTracker) Preferred() []int {
	out := make([]int, 0, len(p.preferred))
	for c := range p.preferred {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// NumSeen returns N, the number of distinct classes encountered so far.
func (p *PreferenceTracker) NumSeen() int { return len(p.everSeen) }

// AllocationWeight returns Δ_i for one sample (Eq. 4's numerator): Δ_k for
// preferred classes, 1−Δ_k otherwise.
func (p *PreferenceTracker) AllocationWeight(class int) float64 {
	if p.preferred[class] {
		return p.delta
	}
	return 1 - p.delta
}
