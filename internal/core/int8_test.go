package core

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/parallel"
	"chameleon/internal/race"
)

// newTestChameleonInt8 is newTestChameleon with both replay stores quantized.
func newTestChameleonInt8(set *cl.LatentSet, seed int64, meter *cl.TrafficMeter) *Chameleon {
	return New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Momentum: 0.5, Seed: seed}),
		Config{STCap: 5, LTCap: 10, AccessRate: 2, PromoteEvery: 1, Window: 20, Meter: meter, Seed: seed, ReplayInt8: true})
}

// TestQuantizedChameleonKillAndResumeBitIdentical is the crash contract for
// an int8-store learner: a run killed at batch k and resumed from its
// checkpoint must finish with the same accuracy, raw int8 buffer contents,
// RNG position and traffic counts as the uninterrupted run. Because the
// stores checkpoint their canonical (QZ, Scale) records — never re-quantized
// fp32 — the quantize/dequantize round trip is bit-exact across save/restore.
func TestQuantizedChameleonKillAndResumeBitIdentical(t *testing.T) {
	set := buildEnv(t)
	const seed = 33
	opts := data.StreamOptions{BatchSize: 5}

	refMeter := &cl.TrafficMeter{}
	ref := newTestChameleonInt8(set, seed, refMeter)
	refRes := cl.RunOnline(ref, set.Stream(seed, opts), set.Test)
	refState := decodeState(t, mustSnapshot(t, ref))
	if len(refState.STQ) == 0 || len(refState.ST) != 0 {
		t.Fatalf("int8 learner snapshot not dtype-tagged: ST=%d STQ=%d", len(refState.ST), len(refState.STQ))
	}
	for i, it := range refState.LT {
		if !it.Quantized() {
			t.Fatalf("long-term snapshot item %d not quantized", i)
		}
	}

	for _, killAt := range []int{1, 5, 11} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		crashMeter := &cl.TrafficMeter{}
		crashed := newTestChameleonInt8(set, seed, crashMeter)
		_, err := cl.RunOnlineCheckpointed(crashed, set.Stream(seed, opts), set.Test,
			cl.CheckpointPlan{Path: path, Every: 1, Meter: crashMeter, StopAfter: killAt})
		if err != cl.ErrStopped {
			t.Fatalf("killAt=%d: expected ErrStopped, got %v", killAt, err)
		}
		resMeter := &cl.TrafficMeter{}
		resumed := newTestChameleonInt8(set, seed, resMeter)
		res, err := cl.RunOnlineCheckpointed(resumed, set.Stream(seed, opts), set.Test,
			cl.CheckpointPlan{Path: path, Every: 1, Resume: true, Meter: resMeter})
		if err != nil {
			t.Fatalf("killAt=%d: resume failed: %v", killAt, err)
		}
		if res.AccAll != refRes.AccAll {
			t.Fatalf("killAt=%d: resumed accuracy %v != uninterrupted %v", killAt, res.AccAll, refRes.AccAll)
		}
		if res.SamplesSeen != refRes.SamplesSeen {
			t.Fatalf("killAt=%d: samples %d != %d", killAt, res.SamplesSeen, refRes.SamplesSeen)
		}
		if resMeter.Counts() != refMeter.Counts() {
			t.Fatalf("killAt=%d: traffic diverged:\nresumed %s\nref     %s", killAt, resMeter, refMeter)
		}
		if got := decodeState(t, mustSnapshot(t, resumed)); !reflect.DeepEqual(got, refState) {
			t.Fatalf("killAt=%d: final learner state diverged from uninterrupted run", killAt)
		}
	}
}

// TestQuantizedChameleonCrossDtypeRestoreErrors pins the dtype tag at the
// learner level: an fp32 snapshot cannot restore into an int8 learner and
// vice versa — either direction must error rather than silently mix
// representations.
func TestQuantizedChameleonCrossDtypeRestoreErrors(t *testing.T) {
	set := buildEnv(t)
	drive := func(c *Chameleon) {
		st := set.Stream(52, data.StreamOptions{BatchSize: 5})
		for i := 0; i < 8; i++ {
			b, ok := st.Next()
			if !ok {
				break
			}
			c.Observe(b)
		}
	}
	fp32 := newTestChameleon(set, 52, nil)
	int8L := newTestChameleonInt8(set, 52, nil)
	drive(fp32)
	drive(int8L)

	fp32Snap := mustSnapshot(t, fp32)
	int8Snap := mustSnapshot(t, int8L)

	if err := newTestChameleonInt8(set, 52, nil).Restore(fp32Snap); err == nil {
		t.Fatal("fp32 snapshot restored into int8 learner")
	}
	if err := newTestChameleon(set, 52, nil).Restore(int8Snap); err == nil {
		t.Fatal("int8 snapshot restored into fp32 learner")
	}
	// Matching dtypes keep working.
	if err := newTestChameleonInt8(set, 52, nil).Restore(int8Snap); err != nil {
		t.Fatalf("int8→int8 restore failed: %v", err)
	}
	if err := newTestChameleon(set, 52, nil).Restore(fp32Snap); err != nil {
		t.Fatalf("fp32→fp32 restore failed: %v", err)
	}
}

// TestQuantizedShortTermTrainsOnDecodedValues pins the quantization point:
// what an int8 learner rehearses from M_s is the decode of the stored int8
// payload — identical to what a checkpoint round trip reproduces — not the
// raw fp32 values that arrived on the stream.
func TestQuantizedShortTermTrainsOnDecodedValues(t *testing.T) {
	set := buildEnv(t)
	c := newTestChameleonInt8(set, 61, nil)
	st := set.Stream(61, data.StreamOptions{BatchSize: 5})
	for i := 0; i < 6; i++ {
		b, ok := st.Next()
		if !ok {
			break
		}
		c.Observe(b)
	}
	items := c.ShortTerm().Items()
	qs := c.ShortTerm().QuantState()
	if len(items) == 0 || len(items) != len(qs) {
		t.Fatalf("items %d vs quant state %d", len(items), len(qs))
	}
	for i, it := range items {
		for j, v := range it.Z.Data() {
			want := float32(qs[i].QZ[j]) * qs[i].Scale
			if math.Float32bits(v) != math.Float32bits(want) {
				t.Fatalf("slot %d element %d: live value %x != decode %x", i, j, math.Float32bits(v), math.Float32bits(want))
			}
		}
	}
}

// TestAllocsQuantizedTrainStep pins the acceptance criterion: the int8-store
// training step — sweep the quantized short-term store with the incoming
// sample, rehearse a dequantized long-term minibatch, refresh M_s
// (re-quantizing a slot in place) — performs zero heap allocations once warm.
// SelectionProbs is fed from a caller-held slice exactly as Observe holds its
// own; the full Observe additionally allocates in Promote's prototype math,
// which is outside the train step and unchanged by this PR.
func TestAllocsQuantizedTrainStep(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(0) })
	set := buildEnv(t)
	c := newTestChameleonInt8(set, 71, nil)
	st := set.Stream(71, data.StreamOptions{BatchSize: 5})
	var batch cl.LatentBatch
	for i := 0; i < 12; i++ { // past both fill phases: ST cap 5, LT cap 10
		b, ok := st.Next()
		if !ok {
			break
		}
		c.Observe(b)
		batch = b
	}
	if c.ShortTerm().Len() < c.ShortTerm().Cap() || c.LongTerm().Len() == 0 {
		t.Fatal("stores not warm")
	}
	probs := SelectionProbs(c.Tracker(), []float64{1, 1, 1, 1, 1}[:len(batch.Samples)], batchLabels(batch), 1, 1)
	var stepBuf, mbBuf []cl.LatentSample
	// Warm-up: size the scratch buffers and decode slots.
	step := func() {
		stepBuf = append(stepBuf[:0], batch.Samples[0])
		stepBuf = append(stepBuf, c.ShortTerm().Items()...)
		c.Head().TrainCEOn(stepBuf)
		mbBuf = c.LongTerm().SampleInto(mbBuf[:0], 5)
		c.Head().TrainCEOn(mbBuf)
		c.ShortTerm().Update(batch.Samples, probs)
	}
	step()
	got := testing.AllocsPerRun(50, step)
	if got != 0 {
		t.Fatalf("quantized train step allocates %.1f times/op, want 0", got)
	}
}

func batchLabels(b cl.LatentBatch) []int {
	out := make([]int, len(b.Samples))
	for i, s := range b.Samples {
		out[i] = s.Label
	}
	return out
}
