package core

import (
	"fmt"
	"math"
	"math/rand"

	"chameleon/internal/cl"
	"chameleon/internal/replay"
	"chameleon/internal/tensor"
)

// LongTermStore is Chameleon's off-chip replay buffer M_l: class-balanced,
// updated every h batches by promoting the short-term sample that diverges
// most from its class prototype (Eq. 5–6), and sampled in mini-batches for
// periodic rehearsal.
type LongTermStore struct {
	buf    *replay.ClassBalanced
	rng    *rand.Rand
	cursor int
	// itemBuf is the Into variants' reusable draw scratch (never
	// checkpointed; State/SetState go through Export/SetContents).
	itemBuf []replay.Item
}

// NewLongTermStore creates an M_l with the given capacity.
func NewLongTermStore(capacity int, rng *rand.Rand) *LongTermStore {
	return &LongTermStore{buf: replay.NewClassBalanced(capacity, rng), rng: rng}
}

// EnableInt8 switches the backing class-balanced buffer to quantized
// storage; it must be called while the store is still empty.
func (l *LongTermStore) EnableInt8() error { return l.buf.EnableInt8() }

// Quantized reports whether the store holds int8 latents.
func (l *LongTermStore) Quantized() bool { return l.buf.Quantized() }

// Len returns the current fill.
func (l *LongTermStore) Len() int { return l.buf.Len() }

// Cap returns the capacity.
func (l *LongTermStore) Cap() int { return l.buf.Cap() }

// Classes returns the classes currently present.
func (l *LongTermStore) Classes() []int { return l.buf.Classes() }

// Sample draws n items uniformly for rehearsal (m̂_l in Algorithm 1, line 5).
func (l *LongTermStore) Sample(n int) []cl.LatentSample {
	items := l.buf.Sample(n)
	out := make([]cl.LatentSample, len(items))
	for i, it := range items {
		out[i] = cl.LatentSample{Z: it.Z, Label: it.Label}
	}
	return out
}

// SampleInto is Sample appending to dst and returning it — the
// allocation-free variant for the hot rehearsal loop (callers keep the
// returned slice as reusable scratch). The underlying RNG draw sequence is
// identical to Sample's.
func (l *LongTermStore) SampleInto(dst []cl.LatentSample, n int) []cl.LatentSample {
	l.itemBuf = l.buf.SampleInto(l.itemBuf[:0], n)
	for _, it := range l.itemBuf {
		dst = append(dst, cl.LatentSample{Z: it.Z, Label: it.Label})
	}
	return dst
}

// NextMinibatch implements the paper's "iterative mini-batch concatenation
// scheme": successive calls walk the store with a rotating cursor (class by
// class), so over consecutive long-term accesses the whole buffer is
// rehearsed rather than a random subset, wrapping around between calls. One
// minibatch never repeats an item: n is clamped to the store size, so a
// request larger than the buffer rehearses each sample exactly once instead
// of double-weighting the cursor's neighbourhood in the SGD step.
func (l *LongTermStore) NextMinibatch(n int) []cl.LatentSample {
	return l.NextMinibatchInto(nil, n)
}

// NextMinibatchInto is NextMinibatch appending to dst and returning it: the
// cursor walk is identical, but the buffer export lands in reusable internal
// scratch and the minibatch in caller-owned scratch, so the steady-state
// rehearsal step allocates nothing.
func (l *LongTermStore) NextMinibatchInto(dst []cl.LatentSample, n int) []cl.LatentSample {
	// Class-ascending, the buffer's canonical order.
	l.itemBuf = l.buf.ExportInto(l.itemBuf[:0])
	all := l.itemBuf
	if len(all) == 0 || n <= 0 {
		return dst
	}
	if n > len(all) {
		n = len(all)
	}
	for i := 0; i < n; i++ {
		// Dequantized is the identity on fp32 stores; on int8 stores it
		// decodes the drawn record into per-position scratch, so only the
		// minibatch is materialised — never the whole buffer.
		it := l.buf.Dequantized(all[l.cursor%len(all)], i)
		dst = append(dst, cl.LatentSample{Z: it.Z, Label: it.Label})
		l.cursor++
	}
	l.cursor %= len(all)
	return dst
}

// State copies the store contents (canonical class-ascending order) and the
// rotating cursor for checkpointing.
func (l *LongTermStore) State() ([]replay.Item, int) {
	return l.buf.Export(), l.cursor
}

// SetState restores contents and cursor captured by State.
func (l *LongTermStore) SetState(items []replay.Item, cursor int) error {
	if cursor < 0 || (len(items) > 0 && cursor >= len(items)) || (len(items) == 0 && cursor != 0) {
		return fmt.Errorf("core: long-term cursor %d out of range for %d items", cursor, len(items))
	}
	if err := l.buf.SetContents(items); err != nil {
		return err
	}
	l.cursor = cursor
	return nil
}

// Prototype computes P_c (Eq. 5): the mean latent of class c's stored
// samples, approximating the class's centre of mass in latent space.
// Returns nil when the class is absent.
func (l *LongTermStore) Prototype(class int) *tensor.Tensor {
	items := l.buf.OfClass(class)
	if len(items) == 0 {
		return nil
	}
	// Decode each record through slot 0 and fold it into the accumulator
	// immediately — the prototype never needs two decoded records at once.
	first := l.buf.Dequantized(items[0], 0)
	proto := tensor.New(first.Z.Shape()...)
	proto.AddInPlace(first.Z)
	for _, it := range items[1:] {
		proto.AddInPlace(l.buf.Dequantized(it, 0).Z)
	}
	proto.Scale(1 / float32(len(items)))
	return proto
}

// Score computes S_j (Eq. 6) for a candidate: tanh of the KL divergence
// between the model's softmax on the candidate and on its class prototype.
// A high score means the sample disagrees with its class's stored consensus
// and is therefore informative. When the class has no prototype yet the
// candidate is maximally novel and scores 1.
func (l *LongTermStore) Score(candidate cl.LatentSample, probsOf func(z *tensor.Tensor) *tensor.Tensor) float64 {
	proto := l.Prototype(candidate.Label)
	if proto == nil {
		return 1
	}
	p := probsOf(candidate.Z)
	q := probsOf(proto)
	return math.Tanh(tensor.KLDivergence(p.Data(), q.Data()))
}

// Promote implements Algorithm 1, lines 12–14: among the short-term
// candidates it greedily selects the one with the maximum S_j and swaps it
// for a random same-class long-term sample (Insert handles the class-absent
// and under-capacity cases, preserving class balance). It returns the index
// of the promoted candidate, or -1 when there are no candidates.
func (l *LongTermStore) Promote(candidates []cl.LatentSample, probsOf func(z *tensor.Tensor) *tensor.Tensor) int {
	if len(candidates) == 0 {
		return -1
	}
	best, bestScore := -1, math.Inf(-1)
	for i, c := range candidates {
		s := l.Score(c, probsOf)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	l.PromoteIndex(candidates, best)
	return best
}

// PromoteIndex inserts candidates[i] directly (the ablation path that skips
// the Eq. 6 scoring), swapping a random same-class victim when full.
func (l *LongTermStore) PromoteIndex(candidates []cl.LatentSample, i int) {
	chosen := candidates[i]
	it := replay.Item{Z: chosen.Z, Label: chosen.Label}
	if l.buf.Len() < l.buf.Cap() {
		l.buf.Insert(it)
	} else if !l.buf.ReplaceRandomOfClass(it) {
		l.buf.Insert(it)
	}
}
