package core

import (
	"math"
	"math/rand"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/tensor"
)

// nanBatch builds a batch of n latents whose labels are their indices.
func nanBatch(n int) []cl.LatentSample {
	out := make([]cl.LatentSample, n)
	for i := range out {
		z := tensor.New(4)
		z.Data()[0] = float32(i)
		out[i] = cl.LatentSample{Z: z, Label: i % 3}
	}
	return out
}

// TestSelectionProbsNonFiniteUncertainty feeds NaN and Inf logit responses
// (what Uncertainty produces from a diverged head) through Eq. 4 and requires
// a finite, normalised distribution back.
func TestSelectionProbsNonFiniteUncertainty(t *testing.T) {
	tracker := NewPreferenceTracker(2, 0.6, 100)
	for _, labels := range [][]int{{0, 1, 2, 0}, {1, 1, 1, 1}} {
		for _, uncert := range [][]float64{
			{math.NaN(), 1, 2, 3},
			{math.Inf(1), 1, 2, 3},
			{math.NaN(), math.NaN(), math.NaN(), math.NaN()},
			{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)},
			{math.NaN(), math.Inf(1), 0, 5},
		} {
			probs := SelectionProbs(tracker, uncert, labels, 1, 1)
			sum := 0.0
			for i, p := range probs {
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
					t.Fatalf("uncert %v labels %v: probs[%d] = %v", uncert, labels, i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("uncert %v labels %v: probs sum to %v, want 1", uncert, labels, sum)
			}
		}
	}
	// α=β=0 (the random-selection ablation) with NaN uncertainty must still
	// come back uniform, not NaN.
	probs := SelectionProbs(tracker, []float64{math.NaN(), 1}, []int{0, 1}, 0, 0)
	if probs[0] != 0.5 || probs[1] != 0.5 {
		t.Fatalf("degenerate weights: %v, want uniform", probs)
	}
}

// TestShortTermUpdateNaNNotBiasedToLast is the regression test for the CDF
// walk bug: with a NaN anywhere in the weight vector, sampleIndex's
// normalizer went NaN, `z <= 0` evaluated false, every `r < acc` comparison
// failed, and Update deterministically selected the LAST batch element. The
// fix falls back to a uniform draw, so over many trials every index must be
// chosen and the last must not dominate.
func TestShortTermUpdateNaNNotBiasedToLast(t *testing.T) {
	const n, trials = 4, 400
	for _, probs := range [][]float64{
		{math.NaN(), 0.2, 0.3, 0.5},
		{math.NaN(), math.NaN(), math.NaN(), math.NaN()},
		{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)},
		{0.1, math.NaN(), math.Inf(1), 0.2},
	} {
		st := NewShortTermStore(1, rand.New(rand.NewSource(42)))
		batch := nanBatch(n)
		counts := make([]int, n)
		for i := 0; i < trials; i++ {
			chosen := st.Update(batch, probs)
			if chosen < 0 || chosen >= n {
				t.Fatalf("probs %v: chosen = %d out of range", probs, chosen)
			}
			counts[chosen]++
		}
		if counts[n-1] == trials {
			t.Fatalf("probs %v: selection pinned to last index (the pre-fix bias): %v", probs, counts)
		}
		// Indices with usable mass (or all, under the uniform fallback) must
		// actually be reachable.
		if counts[n-1] > trials*3/4 {
			t.Fatalf("probs %v: last index still dominates: %v", probs, counts)
		}
	}
}

// TestShortTermUpdateNaNLogitsEndToEnd drives the full Eq. 3 → Eq. 4 path —
// NaN/Inf logits scored by Uncertainty, mixed by SelectionProbs, drawn by
// Update — and checks selection stays usable.
func TestShortTermUpdateNaNLogitsEndToEnd(t *testing.T) {
	tracker := NewPreferenceTracker(2, 0.6, 100)
	rng := rand.New(rand.NewSource(7))
	st := NewShortTermStore(2, rng)
	batch := nanBatch(5)
	logits := [][]float32{
		{float32(math.NaN()), 1, 0},
		{2, float32(math.Inf(1)), 0},
		{0.5, 0.5, 0.5},
		{1, 2, 3},
		{0, 0, float32(math.NaN())},
	}
	counts := make([]int, len(batch))
	for trial := 0; trial < 300; trial++ {
		uncert := make([]float64, len(batch))
		labels := make([]int, len(batch))
		for i, s := range batch {
			lt := tensor.New(3)
			copy(lt.Data(), logits[i])
			uncert[i] = Uncertainty(lt, s.Label)
			labels[i] = s.Label
			tracker.Observe(s.Label)
		}
		probs := SelectionProbs(tracker, uncert, labels, 1, 1)
		chosen := st.Update(batch, probs)
		if chosen < 0 || chosen >= len(batch) {
			t.Fatalf("trial %d: chosen = %d", trial, chosen)
		}
		counts[chosen]++
	}
	if counts[len(batch)-1] == 300 {
		t.Fatalf("selection pinned to last batch element: %v", counts)
	}
	if st.Len() == 0 {
		t.Fatal("store never filled")
	}
}
