package core

import (
	"fmt"
	"reflect"
	"sort"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/replay"
)

// chameleonState is the serialized form of a Chameleon learner: everything
// Algorithm 1 mutates — head weights and SGD momentum, both replay stores,
// the preference-tracker window statistics, the shared RNG position and the
// batch counter. Hyper-parameters are NOT stored: a snapshot restores into a
// learner constructed with the same Config, which the run driver guarantees
// (same spec, same seed).
// The replay stores are dtype-tagged: an fp32 learner fills ST and carries
// plain items in LT, an int8 learner fills STQ (ST nil) and carries
// quantized items in LT. gob leaves absent fields zero, so a legacy payload
// decodes with STQ nil and QZ-less LT items — i.e. as fp32 — and the
// restore paths reject cross-dtype combinations.
type chameleonState struct {
	Head     cl.HeadState
	Tracker  trackerState
	ST       []cl.LatentSample
	STQ      []QuantSample
	LT       []replay.Item
	LTCursor int
	Rand     checkpoint.RandState
	Batches  int
}

// trackerState serializes the PreferenceTracker's window statistics. Sets are
// stored as sorted slices (gob's map encoding is order-randomized; sorted
// slices keep snapshots canonical).
type trackerState struct {
	Counts    map[int]int
	InWindow  int
	Preferred []int
	Delta     float64
	EverSeen  []int
}

// state captures the tracker's mutable statistics.
func (p *PreferenceTracker) state() trackerState {
	st := trackerState{
		Counts:    make(map[int]int, len(p.counts)),
		InWindow:  p.inWindow,
		Preferred: setToSorted(p.preferred),
		Delta:     p.delta,
		EverSeen:  setToSorted(p.everSeen),
	}
	for c, n := range p.counts {
		st.Counts[c] = n
	}
	return st
}

// setState restores statistics captured by state.
func (p *PreferenceTracker) setState(st trackerState) {
	p.counts = make(map[int]int, len(st.Counts))
	for c, n := range st.Counts {
		p.counts[c] = n
	}
	p.inWindow = st.InWindow
	p.preferred = sortedToSet(st.Preferred)
	p.delta = st.Delta
	p.everSeen = sortedToSet(st.EverSeen)
}

func setToSorted(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func sortedToSet(vals []int) map[int]bool {
	set := make(map[int]bool, len(vals))
	for _, c := range vals {
		set[c] = true
	}
	return set
}

// Snapshot implements cl.Snapshotter: the complete mutable learner state as
// one opaque payload.
func (c *Chameleon) Snapshot() ([]byte, error) {
	st := chameleonState{
		Head:     c.head.State(),
		Tracker:  c.tracker.state(),
		LT:       c.lt.buf.Export(),
		LTCursor: c.lt.cursor,
		Rand:     c.src.State(),
		Batches:  c.batches,
	}
	if c.st.Quantized() {
		st.STQ = c.st.QuantState()
	} else {
		st.ST = append([]cl.LatentSample(nil), c.st.Items()...)
	}
	return checkpoint.Encode(st)
}

// SnapshotsEqual reports whether two Snapshot payloads describe the same
// learner state. Raw payload bytes are NOT comparable — gob randomizes map
// encoding order — so callers outside the package (e.g. the serving layer's
// replay-identity tests) must compare decoded state, which this wraps.
func SnapshotsEqual(a, b []byte) (bool, error) {
	var sa, sb chameleonState
	if err := checkpoint.Decode(a, &sa); err != nil {
		return false, fmt.Errorf("core: decode first snapshot: %w", err)
	}
	if err := checkpoint.Decode(b, &sb); err != nil {
		return false, fmt.Errorf("core: decode second snapshot: %w", err)
	}
	return reflect.DeepEqual(sa, sb), nil
}

// Restore implements cl.Snapshotter. Capacities and shapes are validated
// against this learner's configuration before any state is replaced; a
// corrupt or mismatched snapshot returns an error with the learner unusable
// for resume but never panics.
func (c *Chameleon) Restore(data []byte) error {
	var st chameleonState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("core: decode chameleon snapshot: %w", err)
	}
	if st.Batches < 0 {
		return fmt.Errorf("core: snapshot batch counter %d is negative", st.Batches)
	}
	if len(st.ST) > 0 && len(st.STQ) > 0 {
		return fmt.Errorf("core: snapshot carries both fp32 and int8 short-term state")
	}
	if err := c.head.SetState(st.Head); err != nil {
		return err
	}
	if len(st.STQ) > 0 {
		if err := c.st.SetQuantState(st.STQ); err != nil {
			return err
		}
	} else if err := c.st.SetItems(st.ST); err != nil {
		return err
	}
	if err := c.lt.SetState(st.LT, st.LTCursor); err != nil {
		return err
	}
	c.tracker.setState(st.Tracker)
	c.src.Restore(st.Rand)
	c.batches = st.Batches
	return nil
}
