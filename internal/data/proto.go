package data

import (
	"math"
	"math/rand"

	"chameleon/internal/tensor"
)

// blob is one Gaussian colour blob of a class prototype.
type blob struct {
	cx, cy, sigma float64
	amp           [3]float64
}

// classProto is the procedural appearance model of one object class.
type classProto struct {
	blobs []blob
	// grating parameters: spatial frequency, phase and per-channel weight.
	fx, fy, phase float64
	gamp          [3]float64
}

// newClassProto draws a class prototype from rng.
func newClassProto(rng *rand.Rand) classProto {
	nBlobs := 3 + rng.Intn(3)
	p := classProto{
		fx:    1 + rng.Float64()*3,
		fy:    1 + rng.Float64()*3,
		phase: rng.Float64() * 2 * math.Pi,
	}
	for c := 0; c < 3; c++ {
		p.gamp[c] = rng.NormFloat64() * 0.25
	}
	for i := 0; i < nBlobs; i++ {
		b := blob{
			cx:    0.2 + rng.Float64()*0.6,
			cy:    0.2 + rng.Float64()*0.6,
			sigma: 0.08 + rng.Float64()*0.2,
		}
		for c := 0; c < 3; c++ {
			b.amp[c] = rng.NormFloat64()
		}
		p.blobs = append(p.blobs, b)
	}
	return p
}

// jitter is the per-frame instance variation applied to a prototype: blob
// displacement and amplitude modulation. Within a session it evolves
// smoothly, emulating consecutive video frames of the same object.
type jitter struct {
	dx, dy float64 // blob displacement (fraction of image)
	scale  float64 // amplitude modulation
}

// render draws a [3,R,R] image of the prototype under the given jitter and
// domain, adding per-pixel noise from rng.
func (p classProto) render(res int, j jitter, d DomainParams, rng *rand.Rand) *tensor.Tensor {
	img := tensor.New(3, res, res)
	data := img.Data()
	inv := 1 / float64(res)
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			// Object-space coordinates with domain translation.
			u := (float64(x-d.ShiftX) + 0.5) * inv
			v := (float64(y-d.ShiftY) + 0.5) * inv
			var px [3]float64
			for _, b := range p.blobs {
				du := u - (b.cx + j.dx)
				dv := v - (b.cy + j.dy)
				g := math.Exp(-(du*du + dv*dv) / (2 * b.sigma * b.sigma))
				if g < 1e-4 {
					continue
				}
				for c := 0; c < 3; c++ {
					px[c] += b.amp[c] * g * j.scale
				}
			}
			gr := math.Sin(2*math.Pi*(p.fx*u+p.fy*v) + p.phase)
			for c := 0; c < 3; c++ {
				px[c] += p.gamp[c] * gr
			}
			// Domain transform: contrast, colour mix, brightness, background.
			for c := 0; c < 3; c++ {
				px[c] *= d.Contrast
			}
			var mixed [3]float64
			for c := 0; c < 3; c++ {
				mixed[c] = d.Mix[c][0]*px[0] + d.Mix[c][1]*px[1] + d.Mix[c][2]*px[2]
			}
			bg := d.BgX*(2*u-1) + d.BgY*(2*v-1) + d.BgC
			for c := 0; c < 3; c++ {
				val := mixed[c] + d.Brightness + bg
				if d.Noise > 0 {
					val += rng.NormFloat64() * d.Noise
				}
				data[c*res*res+y*res+x] = float32(val)
			}
		}
	}
	if d.Occlusion > 0 {
		side := int(d.Occlusion * float64(res))
		ox := rng.Intn(res - side)
		oy := rng.Intn(res - side)
		for c := 0; c < 3; c++ {
			for y := oy; y < oy+side; y++ {
				for x := ox; x < ox+side; x++ {
					data[c*res*res+y*res+x] = 0
				}
			}
		}
	}
	return img
}
