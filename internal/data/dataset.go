package data

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// Sample is one labelled frame of the stream.
type Sample struct {
	// ID is the sample's stable index within its pool (train and test pools
	// are numbered independently, each from 0). Feature caches key on it.
	ID int
	// Image is the [3,R,R] rendered frame.
	Image *tensor.Tensor
	// Label is the class index.
	Label int
	// Domain is the acquisition-condition index the frame was rendered under.
	Domain int
	// Session groups consecutive frames of the same object recording.
	Session int
}

// Config describes a synthetic benchmark instance.
type Config struct {
	// Name is a human-readable identifier ("core50", "openloris").
	Name string
	// NumClasses is the number of object classes.
	NumClasses int
	// NumDomains is the total number of acquisition conditions.
	NumDomains int
	// TestDomains lists held-out domain indices used only for evaluation
	// (CORe50's NI protocol holds out sessions 3, 7 and 10).
	TestDomains []int
	// Resolution is the square image size.
	Resolution int
	// SessionsPerClassDomain and FramesPerSession size each (class, domain)
	// pool; train pool size = classes × train-domains × sessions × frames.
	SessionsPerClassDomain int
	FramesPerSession       int
	// TestFramesPerClassDomain sizes the test pool on held-out domains.
	TestFramesPerClassDomain int
	// Severity scales domain-shift strength in (0,1].
	Severity float64
	// Smooth makes consecutive domains interpolate between two endpoint
	// conditions (OpenLORIS's gradual illumination/occlusion factors) instead
	// of being independent draws (CORe50's distinct sessions).
	Smooth bool
	// Seed drives all procedural generation.
	Seed int64
}

// CORe50 returns the laptop-scale synthetic CORe50 configuration: 50 classes,
// 11 domains with 3 held out for testing, abrupt domain shifts.
func CORe50(seed int64) Config {
	return Config{
		Name:                     "core50",
		NumClasses:               50,
		NumDomains:               11,
		TestDomains:              []int{2, 6, 9}, // sessions 3, 7, 10 (0-based)
		Resolution:               32,
		SessionsPerClassDomain:   1,
		FramesPerSession:         5,
		TestFramesPerClassDomain: 3,
		Severity:                 1.0,
		Smooth:                   false,
		Seed:                     seed,
	}
}

// OpenLORIS returns the laptop-scale synthetic OpenLORIS-Object
// configuration: more frames per class and smooth transitions between the 12
// domains, which is why every method scores higher on it (paper §IV-B).
func OpenLORIS(seed int64) Config {
	return Config{
		Name:                     "openloris",
		NumClasses:               40,
		NumDomains:               12,
		TestDomains:              []int{3, 7, 11},
		Resolution:               32,
		SessionsPerClassDomain:   1,
		FramesPerSession:         8,
		TestFramesPerClassDomain: 4,
		Severity:                 0.55,
		Smooth:                   true,
		Seed:                     seed,
	}
}

// Dataset is a fully generated benchmark: train pool (ordered by domain) and
// held-out test pool.
type Dataset struct {
	Cfg Config
	// Train holds the training frames grouped by domain in stream order.
	Train []Sample
	// Test holds the evaluation frames from the held-out domains.
	Test []Sample
	// Domains are the generated acquisition conditions, index-aligned with
	// Sample.Domain.
	Domains []DomainParams
	// TrainDomains lists domain indices present in Train, in stream order.
	TrainDomains []int
}

// Generate renders the benchmark described by cfg.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("data: need at least 2 classes, got %d", cfg.NumClasses)
	}
	if cfg.NumDomains < 2 {
		return nil, fmt.Errorf("data: need at least 2 domains, got %d", cfg.NumDomains)
	}
	if cfg.Resolution < 8 {
		return nil, fmt.Errorf("data: resolution %d too small", cfg.Resolution)
	}
	if cfg.Severity <= 0 || cfg.Severity > 1.5 {
		return nil, fmt.Errorf("data: severity %v out of (0,1.5]", cfg.Severity)
	}
	test := make(map[int]bool)
	for _, d := range cfg.TestDomains {
		if d < 0 || d >= cfg.NumDomains {
			return nil, fmt.Errorf("data: test domain %d out of range", d)
		}
		test[d] = true
	}
	if len(test) == 0 || len(test) >= cfg.NumDomains {
		return nil, fmt.Errorf("data: need at least one train and one test domain")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([]classProto, cfg.NumClasses)
	for c := range protos {
		protos[c] = newClassProto(rng)
	}
	domains := make([]DomainParams, cfg.NumDomains)
	if cfg.Smooth {
		a := randomDomain(rng, cfg.Severity)
		b := randomDomain(rng, cfg.Severity)
		for d := range domains {
			domains[d] = lerpDomain(a, b, float64(d)/float64(cfg.NumDomains-1))
		}
	} else {
		for d := range domains {
			domains[d] = randomDomain(rng, cfg.Severity)
		}
	}

	ds := &Dataset{Cfg: cfg, Domains: domains}
	session := 0
	for d := 0; d < cfg.NumDomains; d++ {
		if test[d] {
			// Held-out domain: render the test pool.
			for c := 0; c < cfg.NumClasses; c++ {
				for i := 0; i < cfg.TestFramesPerClassDomain; i++ {
					j := jitter{
						dx:    rng.NormFloat64() * 0.03,
						dy:    rng.NormFloat64() * 0.03,
						scale: 1 + rng.NormFloat64()*0.08,
					}
					ds.Test = append(ds.Test, Sample{
						Image:  protos[c].render(cfg.Resolution, j, domains[d], rng),
						Label:  c,
						Domain: d,
					})
				}
			}
			continue
		}
		ds.TrainDomains = append(ds.TrainDomains, d)
		// Training domain: render temporally correlated sessions.
		var pool []Sample
		for c := 0; c < cfg.NumClasses; c++ {
			for s := 0; s < cfg.SessionsPerClassDomain; s++ {
				session++
				j := jitter{
					dx:    rng.NormFloat64() * 0.03,
					dy:    rng.NormFloat64() * 0.03,
					scale: 1 + rng.NormFloat64()*0.08,
				}
				for f := 0; f < cfg.FramesPerSession; f++ {
					// Random-walk jitter within the session: consecutive
					// frames are highly correlated, like video.
					j.dx += rng.NormFloat64() * 0.008
					j.dy += rng.NormFloat64() * 0.008
					j.scale += rng.NormFloat64() * 0.02
					pool = append(pool, Sample{
						Image:   protos[c].render(cfg.Resolution, j, domains[d], rng),
						Label:   c,
						Domain:  d,
						Session: session,
					})
				}
			}
		}
		ds.Train = append(ds.Train, pool...)
	}
	for i := range ds.Train {
		ds.Train[i].ID = i
	}
	for i := range ds.Test {
		ds.Test[i].ID = i
	}
	return ds, nil
}

// NumTrain returns the training-pool size.
func (d *Dataset) NumTrain() int { return len(d.Train) }

// NumTest returns the test-pool size.
func (d *Dataset) NumTest() int { return len(d.Test) }
