package data

import (
	"math"
	"testing"
)

func tinyConfig(seed int64) Config {
	return Config{
		Name:                     "tiny",
		NumClasses:               4,
		NumDomains:               4,
		TestDomains:              []int{3},
		Resolution:               16,
		SessionsPerClassDomain:   2,
		FramesPerSession:         3,
		TestFramesPerClassDomain: 2,
		Severity:                 1.0,
		Seed:                     seed,
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{NumClasses: 1, NumDomains: 4, TestDomains: []int{3}, Resolution: 16, Severity: 1},
		{NumClasses: 4, NumDomains: 1, TestDomains: []int{0}, Resolution: 16, Severity: 1},
		{NumClasses: 4, NumDomains: 4, TestDomains: []int{9}, Resolution: 16, Severity: 1},
		{NumClasses: 4, NumDomains: 4, TestDomains: nil, Resolution: 16, Severity: 1},
		{NumClasses: 4, NumDomains: 4, TestDomains: []int{3}, Resolution: 2, Severity: 1},
		{NumClasses: 4, NumDomains: 4, TestDomains: []int{3}, Resolution: 16, Severity: 0},
		{NumClasses: 4, NumDomains: 2, TestDomains: []int{0, 1}, Resolution: 16, Severity: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	ds, err := Generate(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// 3 train domains × 4 classes × 2 sessions × 3 frames = 72.
	if ds.NumTrain() != 72 {
		t.Fatalf("train = %d, want 72", ds.NumTrain())
	}
	// 1 test domain × 4 classes × 2 frames = 8.
	if ds.NumTest() != 8 {
		t.Fatalf("test = %d, want 8", ds.NumTest())
	}
	if len(ds.TrainDomains) != 3 {
		t.Fatalf("train domains = %v", ds.TrainDomains)
	}
	for _, sm := range ds.Test {
		if sm.Domain != 3 {
			t.Fatalf("test sample from domain %d", sm.Domain)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(tinyConfig(7))
	b, _ := Generate(tinyConfig(7))
	for i := range a.Train {
		for j, v := range a.Train[i].Image.Data() {
			if b.Train[i].Image.Data()[j] != v {
				t.Fatal("same seed must reproduce identical frames")
			}
		}
	}
	c, _ := Generate(tinyConfig(8))
	if c.Train[0].Image.Data()[0] == a.Train[0].Image.Data()[0] &&
		c.Train[0].Image.Data()[100] == a.Train[0].Image.Data()[100] {
		t.Fatal("different seeds should differ")
	}
}

func TestImagesFiniteAndNonTrivial(t *testing.T) {
	ds, _ := Generate(tinyConfig(2))
	for _, sm := range append(append([]Sample{}, ds.Train...), ds.Test...) {
		var mn, mx float32 = math.MaxFloat32, -math.MaxFloat32
		for _, v := range sm.Image.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("non-finite pixel")
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mx == mn {
			t.Fatal("constant image rendered")
		}
	}
}

func TestClassesAreVisuallyDistinct(t *testing.T) {
	// Same domain, same jitter statistics: the mean inter-class pixel
	// distance must clearly exceed the mean intra-class distance, otherwise
	// no classifier could work.
	cfg := tinyConfig(3)
	cfg.FramesPerSession = 4
	ds, _ := Generate(cfg)
	dom := ds.TrainDomains[0]
	byClass := map[int][]Sample{}
	for _, sm := range ds.Train {
		if sm.Domain == dom {
			byClass[sm.Label] = append(byClass[sm.Label], sm)
		}
	}
	dist := func(a, b Sample) float64 {
		var s float64
		for i, v := range a.Image.Data() {
			d := float64(v - b.Image.Data()[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	var intra, inter float64
	var ni, nx int
	for c1 := 0; c1 < cfg.NumClasses; c1++ {
		ss := byClass[c1]
		for i := 0; i < len(ss); i++ {
			for j := i + 1; j < len(ss); j++ {
				intra += dist(ss[i], ss[j])
				ni++
			}
		}
		for c2 := c1 + 1; c2 < cfg.NumClasses; c2++ {
			inter += dist(ss[0], byClass[c2][0])
			nx++
		}
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if inter < 1.5*intra {
		t.Fatalf("classes not distinct enough: inter=%v intra=%v", inter, intra)
	}
}

func TestDomainsShiftAppearance(t *testing.T) {
	// The same class must look different across domains (domain shift).
	ds, _ := Generate(tinyConfig(4))
	var first, second Sample
	for _, sm := range ds.Train {
		if sm.Label == 0 && sm.Domain == ds.TrainDomains[0] && first.Image == nil {
			first = sm
		}
		if sm.Label == 0 && sm.Domain == ds.TrainDomains[1] && second.Image == nil {
			second = sm
		}
	}
	var d float64
	for i, v := range first.Image.Data() {
		dd := float64(v - second.Image.Data()[i])
		d += dd * dd
	}
	if math.Sqrt(d) < 1 {
		t.Fatalf("cross-domain distance too small: %v", math.Sqrt(d))
	}
}

func TestBalancedStreamSinglePassAndDomainOrder(t *testing.T) {
	ds, _ := Generate(tinyConfig(5))
	st := ds.Stream(1, StreamOptions{BatchSize: 5})
	if st.Total() != ds.NumTrain() {
		t.Fatalf("Total = %d, want %d", st.Total(), ds.NumTrain())
	}
	seen := 0
	lastDomainIdx := -1
	domainRank := map[int]int{}
	for i, d := range ds.TrainDomains {
		domainRank[d] = i
	}
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		if len(b.Samples) == 0 || len(b.Samples) > 5 {
			t.Fatalf("batch size %d", len(b.Samples))
		}
		for _, sm := range b.Samples {
			if sm.Domain != b.Domain {
				t.Fatal("batch straddles domains")
			}
		}
		if r := domainRank[b.Domain]; r < lastDomainIdx {
			t.Fatal("domains must be visited incrementally")
		} else {
			lastDomainIdx = r
		}
		seen += len(b.Samples)
	}
	if seen != ds.NumTrain() {
		t.Fatalf("stream emitted %d of %d", seen, ds.NumTrain())
	}
}

func TestBalancedStreamKeepsSessionsContiguous(t *testing.T) {
	ds, _ := Generate(tinyConfig(6))
	st := ds.Stream(2, StreamOptions{BatchSize: 1})
	var sessions []int
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		sessions = append(sessions, b.Samples[0].Session)
	}
	// Each session id must appear as one contiguous run.
	seen := map[int]bool{}
	for i, s := range sessions {
		if i > 0 && s != sessions[i-1] && seen[s] {
			t.Fatalf("session %d appears in two separate runs", s)
		}
		seen[s] = true
	}
}

func TestUserCentricStreamSkewsFrequencies(t *testing.T) {
	cfg := tinyConfig(9)
	cfg.NumClasses = 8
	ds, _ := Generate(cfg)
	st := ds.Stream(3, StreamOptions{BatchSize: 5, UserCentric: true, PrefSkew: 2.0, PrefTopK: 2, SamplesPerDomain: 200})
	pref := st.PreferredClasses()
	if len(pref) != 2 {
		t.Fatalf("PreferredClasses = %v", pref)
	}
	counts := make([]int, cfg.NumClasses)
	total := 0
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		for _, sm := range b.Samples {
			counts[sm.Label]++
			total++
		}
	}
	if total != st.Total() {
		t.Fatalf("emitted %d, Total says %d", total, st.Total())
	}
	prefCount := counts[pref[0]] + counts[pref[1]]
	if float64(prefCount) < 0.4*float64(total) {
		t.Fatalf("preferred classes got %d of %d samples; skew too weak (counts=%v)", prefCount, total, counts)
	}
}

func TestUserCentricDriftChangesPreferences(t *testing.T) {
	cfg := tinyConfig(10)
	cfg.NumClasses = 8
	ds, _ := Generate(cfg)
	st := ds.Stream(4, StreamOptions{BatchSize: 5, UserCentric: true, DriftEveryBatches: 3, SamplesPerDomain: 300})
	before := st.PreferredClasses()
	for i := 0; i < 20; i++ {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	after := st.PreferredClasses()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("preferences did not drift after 20 batches with DriftEveryBatches=3")
	}
}

func TestClassIncrementalStream(t *testing.T) {
	cfg := tinyConfig(15)
	cfg.NumClasses = 6
	ds, _ := Generate(cfg)
	st := ds.Stream(7, StreamOptions{BatchSize: 4, ClassIncremental: true, ClassesPerTask: 2})
	if st.Total() != ds.NumTrain() {
		t.Fatalf("Total = %d, want %d", st.Total(), ds.NumTrain())
	}
	lastTask := -1
	taskClasses := map[int]map[int]bool{}
	seen := 0
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		if b.Domain < lastTask {
			t.Fatal("tasks must be visited incrementally")
		}
		lastTask = b.Domain
		if taskClasses[b.Domain] == nil {
			taskClasses[b.Domain] = map[int]bool{}
		}
		for _, sm := range b.Samples {
			taskClasses[b.Domain][sm.Label] = true
			seen++
		}
	}
	if seen != ds.NumTrain() {
		t.Fatalf("emitted %d of %d", seen, ds.NumTrain())
	}
	if len(taskClasses) != 3 {
		t.Fatalf("6 classes / 2 per task should give 3 tasks, got %d", len(taskClasses))
	}
	// Each task must contain exactly its 2 classes, disjoint from others.
	union := map[int]bool{}
	for task, cls := range taskClasses {
		if len(cls) != 2 {
			t.Fatalf("task %d has classes %v", task, cls)
		}
		for c := range cls {
			if union[c] {
				t.Fatalf("class %d appears in two tasks", c)
			}
			union[c] = true
		}
	}
}

func TestCORe50AndOpenLORISConfigsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark generation in -short mode")
	}
	for _, cfg := range []Config{CORe50(1), OpenLORIS(1)} {
		// Shrink for test runtime while preserving structure.
		cfg.NumClasses = 6
		cfg.FramesPerSession = 2
		cfg.TestFramesPerClassDomain = 1
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		wantTrain := 6 * (cfg.NumDomains - len(cfg.TestDomains)) * cfg.SessionsPerClassDomain * 2
		if ds.NumTrain() != wantTrain {
			t.Fatalf("%s: train=%d want %d", cfg.Name, ds.NumTrain(), wantTrain)
		}
	}
}

func TestSmoothDomainsAreGradual(t *testing.T) {
	cfg := tinyConfig(11)
	cfg.NumDomains = 6
	cfg.TestDomains = []int{5}
	cfg.Smooth = true
	ds, _ := Generate(cfg)
	// Consecutive domain params must be closer than distant ones.
	d01 := domainDist(ds.Domains[0], ds.Domains[1])
	d05 := domainDist(ds.Domains[0], ds.Domains[4])
	if d01 >= d05 {
		t.Fatalf("smooth domains not gradual: d(0,1)=%v d(0,4)=%v", d01, d05)
	}
}

func domainDist(a, b DomainParams) float64 {
	d := math.Abs(a.Brightness-b.Brightness) + math.Abs(a.Contrast-b.Contrast) +
		math.Abs(a.Noise-b.Noise) + math.Abs(a.BgX-b.BgX) + math.Abs(a.BgY-b.BgY)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d += math.Abs(a.Mix[i][j] - b.Mix[i][j])
		}
	}
	return d
}
