// Package data generates the synthetic stand-ins for the CORe50 and
// OpenLORIS-Object continual-learning benchmarks and exposes them as
// domain-incremental, temporally correlated streams.
//
// Real CORe50/OpenLORIS frames are unavailable offline, so each class is a
// procedurally generated prototype image (a composition of Gaussian colour
// blobs and a sinusoidal grating) and each domain is a parametric acquisition
// condition — brightness, contrast, colour mixing, background gradient,
// sensor noise and translation — mirroring the lighting/background/occlusion
// variation the real benchmarks exhibit (paper Fig. 1). Instances within a
// (class, domain) pool are short "session" clips with smoothly varying
// jitter, reproducing the temporal correlation of video frames.
package data

import (
	"math"
	"math/rand"
)

// DomainParams is one acquisition condition applied on top of the class
// prototype renderer.
type DomainParams struct {
	// Brightness is an additive offset applied to all channels.
	Brightness float64
	// Contrast scales the prototype signal around zero.
	Contrast float64
	// Noise is the per-pixel Gaussian noise std.
	Noise float64
	// Mix is a colour mixing matrix applied to the RGB vector of each pixel.
	Mix [3][3]float64
	// BgX, BgY, BgC parameterise a planar background gradient
	// BgX·u + BgY·v + BgC with u,v in [-1,1].
	BgX, BgY, BgC float64
	// ShiftX, ShiftY translate the object in pixels.
	ShiftX, ShiftY int
	// Occlusion is the side length, as a fraction of the image, of a zeroed
	// box occluding the object (OpenLORIS has an occlusion factor).
	Occlusion float64
}

// identityMix returns the identity colour matrix.
func identityMix() [3][3]float64 {
	return [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// randomDomain draws a random acquisition condition. severity in (0,1]
// scales how far the condition departs from the canonical one; higher
// severity means stronger domain shift and thus harder continual learning.
func randomDomain(rng *rand.Rand, severity float64) DomainParams {
	d := DomainParams{
		Brightness: rng.NormFloat64() * 0.45 * severity,
		Contrast:   1 + rng.NormFloat64()*0.35*severity,
		Noise:      0.05 + rng.Float64()*0.25*severity,
		BgX:        rng.NormFloat64() * 0.4 * severity,
		BgY:        rng.NormFloat64() * 0.4 * severity,
		BgC:        rng.NormFloat64() * 0.3 * severity,
		ShiftX:     rng.Intn(2*maxShift+1) - maxShift,
		ShiftY:     rng.Intn(2*maxShift+1) - maxShift,
	}
	if d.Contrast < 0.3 {
		d.Contrast = 0.3
	}
	d.Mix = identityMix()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d.Mix[i][j] += rng.NormFloat64() * 0.18 * severity
		}
	}
	if rng.Float64() < 0.3*severity {
		d.Occlusion = 0.15 + rng.Float64()*0.15
	}
	return d
}

const maxShift = 2

// lerpDomain interpolates between two conditions; OpenLORIS-style smooth
// factor sequences are built by sliding t from 0 to 1.
func lerpDomain(a, b DomainParams, t float64) DomainParams {
	l := func(x, y float64) float64 { return x + (y-x)*t }
	out := DomainParams{
		Brightness: l(a.Brightness, b.Brightness),
		Contrast:   l(a.Contrast, b.Contrast),
		Noise:      l(a.Noise, b.Noise),
		BgX:        l(a.BgX, b.BgX),
		BgY:        l(a.BgY, b.BgY),
		BgC:        l(a.BgC, b.BgC),
		ShiftX:     int(math.Round(l(float64(a.ShiftX), float64(b.ShiftX)))),
		ShiftY:     int(math.Round(l(float64(a.ShiftY), float64(b.ShiftY)))),
		Occlusion:  l(a.Occlusion, b.Occlusion),
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.Mix[i][j] = l(a.Mix[i][j], b.Mix[i][j])
		}
	}
	return out
}
