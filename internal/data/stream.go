package data

import (
	"math"
	"math/rand"
)

// StreamOptions configures how a Dataset is serialised into an online stream.
type StreamOptions struct {
	// BatchSize is the mini-batch size (paper uses 10). Defaults to 10.
	BatchSize int
	// UserCentric enables preference-skewed sampling: class frequencies
	// follow a Zipf law over a random class ranking, modelling the paper's
	// observation that an individual user accesses only a few classes often.
	UserCentric bool
	// PrefSkew is the Zipf exponent (default 1.2). Larger means stronger
	// concentration on the preferred classes.
	PrefSkew float64
	// PrefTopK is the number of strongly preferred classes (default 5,
	// matching the paper's k).
	PrefTopK int
	// DriftEveryBatches re-draws the preference ranking after this many
	// batches (0 = stable preferences), modelling changing user inclination.
	DriftEveryBatches int
	// SamplesPerDomain overrides how many frames each training domain emits
	// in UserCentric mode (default: the domain's pool size).
	SamplesPerDomain int
	// ClassIncremental switches the stream from the paper's Domain-IL
	// protocol to Class-IL: instead of visiting domains in order, the stream
	// visits *class groups* in order (ClassesPerTask classes at a time, all
	// their domains mixed), the other canonical continual-learning axis.
	ClassIncremental bool
	// ClassesPerTask sizes the Class-IL task groups (default 2).
	ClassesPerTask int
}

// Batch is one step of the online stream.
type Batch struct {
	// Samples are the frames of this step (≤ BatchSize at domain edges).
	Samples []Sample
	// Index is the 0-based batch index.
	Index int
	// Domain is the acquisition condition the batch was drawn from.
	Domain int
}

// domainPool is the per-domain draw state of a user-centric stream.
type domainPool struct {
	domain  int
	byClass map[int][][]Sample
	budget  int
	emitted int
	pending []Sample // remainder of the session currently being replayed
}

// Stream is a single-pass, domain-incremental iterator over a Dataset's
// training pool. Frames within a session stay contiguous (temporal
// correlation); session order is shuffled per domain. In user-centric mode
// sessions are drawn with preference-weighted class frequencies, re-drawable
// over time (preference drift).
type Stream struct {
	opt   StreamOptions
	rng   *rand.Rand
	ds    *Dataset
	batch int

	// Balanced mode: fully serialised order.
	order  []Sample
	cursor int

	// User-centric mode: lazy per-domain pools.
	pools   []*domainPool
	poolIdx int
	total   int

	prefs   []float64
	ranking []int
}

// Stream creates a stream over the dataset with the given seed and options.
func (d *Dataset) Stream(seed int64, opt StreamOptions) *Stream {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 10
	}
	if opt.PrefSkew <= 0 {
		opt.PrefSkew = 1.2
	}
	if opt.PrefTopK <= 0 {
		opt.PrefTopK = 5
	}
	if opt.ClassesPerTask <= 0 {
		opt.ClassesPerTask = 2
	}
	s := &Stream{opt: opt, rng: rand.New(rand.NewSource(seed)), ds: d}
	s.redrawPreferences()
	switch {
	case opt.UserCentric:
		s.buildPools()
	case opt.ClassIncremental:
		s.buildClassIncrementalOrder()
		s.total = len(s.order)
	default:
		s.buildBalancedOrder()
		s.total = len(s.order)
	}
	return s
}

// buildClassIncrementalOrder serialises the pool by class group: classes are
// shuffled into tasks of ClassesPerTask; each task emits all its sessions
// (across every training domain) in shuffled order before the next task
// starts. Batch.Domain reports the task index in this mode.
func (s *Stream) buildClassIncrementalOrder() {
	classes := s.rng.Perm(s.ds.Cfg.NumClasses)
	taskOf := make(map[int]int, len(classes))
	for i, c := range classes {
		taskOf[c] = i / s.opt.ClassesPerTask
	}
	// Group sessions per task.
	type sess struct {
		task   int
		frames []Sample
	}
	var sessions []sess
	for _, dom := range s.ds.TrainDomains {
		ids, bySession := s.sessionsByDomain(dom)
		for _, id := range ids {
			frames := bySession[id]
			sessions = append(sessions, sess{task: taskOf[frames[0].Label], frames: frames})
		}
	}
	s.rng.Shuffle(len(sessions), func(i, j int) { sessions[i], sessions[j] = sessions[j], sessions[i] })
	numTasks := (s.ds.Cfg.NumClasses + s.opt.ClassesPerTask - 1) / s.opt.ClassesPerTask
	for task := 0; task < numTasks; task++ {
		for _, se := range sessions {
			if se.task != task {
				continue
			}
			for _, f := range se.frames {
				// Re-badge the frame's Domain as the task id so batch
				// boundary detection (and EWC/LwF consolidation) follows
				// tasks in Class-IL mode.
				f.Domain = task
				s.order = append(s.order, f)
			}
		}
	}
}

// sessionsByDomain groups the training pool into sessions per domain,
// preserving frame order within each session.
func (s *Stream) sessionsByDomain(dom int) (ids []int, bySession map[int][]Sample) {
	bySession = map[int][]Sample{}
	for _, sm := range s.ds.Train {
		if sm.Domain != dom {
			continue
		}
		if _, seen := bySession[sm.Session]; !seen {
			ids = append(ids, sm.Session)
		}
		bySession[sm.Session] = append(bySession[sm.Session], sm)
	}
	return ids, bySession
}

func (s *Stream) buildBalancedOrder() {
	for _, dom := range s.ds.TrainDomains {
		ids, bySession := s.sessionsByDomain(dom)
		s.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids {
			s.order = append(s.order, bySession[id]...)
		}
	}
}

func (s *Stream) buildPools() {
	for _, dom := range s.ds.TrainDomains {
		ids, bySession := s.sessionsByDomain(dom)
		p := &domainPool{domain: dom, byClass: map[int][][]Sample{}}
		for _, id := range ids {
			sess := bySession[id]
			p.byClass[sess[0].Label] = append(p.byClass[sess[0].Label], sess)
			p.budget += len(sess)
		}
		if s.opt.SamplesPerDomain > 0 {
			p.budget = s.opt.SamplesPerDomain
		}
		s.pools = append(s.pools, p)
		s.total += p.budget
	}
}

// drawClass samples a class index from the preference distribution.
func (s *Stream) drawClass() int {
	r := s.rng.Float64()
	acc := 0.0
	for c, w := range s.prefs {
		acc += w
		if r < acc {
			return c
		}
	}
	return len(s.prefs) - 1
}

// redrawPreferences samples a fresh class ranking and Zipf weights.
func (s *Stream) redrawPreferences() {
	n := s.ds.Cfg.NumClasses
	s.ranking = s.rng.Perm(n)
	s.prefs = make([]float64, n)
	var z float64
	for rank, c := range s.ranking {
		w := 1 / math.Pow(float64(rank+1), s.opt.PrefSkew)
		s.prefs[c] = w
		z += w
	}
	for c := range s.prefs {
		s.prefs[c] /= z
	}
}

// PreferredClasses returns the current top-k preferred class indices.
func (s *Stream) PreferredClasses() []int {
	k := s.opt.PrefTopK
	if k > len(s.ranking) {
		k = len(s.ranking)
	}
	return append([]int(nil), s.ranking[:k]...)
}

// Total returns how many samples the stream will emit in total.
func (s *Stream) Total() int { return s.total }

// Next returns the next batch, or ok=false when the stream is exhausted.
// Batches never straddle a domain boundary.
func (s *Stream) Next() (Batch, bool) {
	if s.opt.UserCentric {
		return s.nextUserCentric()
	}
	if s.cursor >= len(s.order) {
		return Batch{}, false
	}
	dom := s.order[s.cursor].Domain
	end := s.cursor
	for end < len(s.order) && end-s.cursor < s.opt.BatchSize && s.order[end].Domain == dom {
		end++
	}
	b := Batch{Samples: s.order[s.cursor:end], Index: s.batch, Domain: dom}
	s.cursor = end
	s.batch++
	return b, true
}

func (s *Stream) nextUserCentric() (Batch, bool) {
	for s.poolIdx < len(s.pools) && s.pools[s.poolIdx].emitted >= s.pools[s.poolIdx].budget {
		s.poolIdx++
	}
	if s.poolIdx >= len(s.pools) {
		return Batch{}, false
	}
	if s.opt.DriftEveryBatches > 0 && s.batch > 0 && s.batch%s.opt.DriftEveryBatches == 0 {
		s.redrawPreferences()
	}
	p := s.pools[s.poolIdx]
	var out []Sample
	for len(out) < s.opt.BatchSize && p.emitted < p.budget {
		if len(p.pending) == 0 {
			c := s.drawClass()
			sessions := p.byClass[c]
			if len(sessions) == 0 {
				continue
			}
			p.pending = sessions[s.rng.Intn(len(sessions))]
		}
		out = append(out, p.pending[0])
		p.pending = p.pending[1:]
		p.emitted++
	}
	b := Batch{Samples: out, Index: s.batch, Domain: p.domain}
	s.batch++
	return b, true
}
