package baselines

import (
	"bytes"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/testenv"
)

// headM builds a head with momentum so the velocity buffers — the state a
// weights-only snapshot would lose — are exercised by every case.
func headM(set *cl.LatentSet, seed int64) *cl.Head {
	return cl.NewHead(set.Backbone, cl.HeadConfig{LR: testenv.Scale().HeadLR, Momentum: 0.5, Seed: seed})
}

// TestBaselineSnapshotResumeContinuity drives every baseline through the
// crash contract: observe a prefix, snapshot, restore into a fresh instance,
// feed both the identical tail (plus Finish where the method has one) and
// require byte-identical final snapshots and predictions. Baseline states
// contain no maps, so gob output is canonical and raw bytes are comparable.
func TestBaselineSnapshotResumeContinuity(t *testing.T) {
	set := env(t)
	dim := set.Backbone.LatentShape[0]
	classes := set.Dataset.Cfg.NumClasses
	const seed = 17

	cases := []struct {
		name string
		mk   func() cl.Learner
	}{
		{"finetune", func() cl.Learner { return NewFinetune(headM(set, seed)) }},
		{"joint", func() cl.Learner { return NewJoint(headM(set, seed), Config{Epochs: 2, Seed: seed}) }},
		{"er", func() cl.Learner { return NewER(headM(set, seed), Config{BufferSize: 20, Seed: seed}) }},
		{"der", func() cl.Learner { return NewDER(headM(set, seed), Config{BufferSize: 15, Seed: seed}) }},
		{"latent", func() cl.Learner { return NewLatentReplay(headM(set, seed), Config{BufferSize: 20, Seed: seed}) }},
		{"gss", func() cl.Learner { return NewGSS(headM(set, seed), Config{BufferSize: 10, Seed: seed}) }},
		{"slda", func() cl.Learner { return NewSLDA(dim, classes, Config{}) }},
		{"ewcpp", func() cl.Learner { return NewEWCPP(headM(set, seed), Config{Lambda: 1, Seed: seed}) }},
		{"lwf", func() cl.Learner { return NewLwF(headM(set, seed), Config{Lambda: 1, Seed: seed}) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const splitAt = 5
			a := tc.mk()
			snapA := cl.Caps(a).Snapshotter
			if snapA == nil {
				t.Fatalf("%s does not implement cl.Snapshotter", tc.name)
			}
			stream := set.Stream(seed, data.StreamOptions{BatchSize: 10})
			var tail []cl.LatentBatch
			for i := 0; ; i++ {
				b, ok := stream.Next()
				if !ok {
					break
				}
				if i < splitAt {
					a.Observe(b)
				} else {
					tail = append(tail, b)
				}
			}

			state, err := snapA.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			b := tc.mk()
			snapB := cl.Caps(b).Snapshotter
			if err := snapB.Restore(state); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if err := snapB.Restore([]byte("definitely not a snapshot")); err == nil {
				t.Fatal("garbage restore accepted")
			}
			// The failed restore must not have corrupted the learner: re-restore
			// the good state so both instances continue from the same point.
			if err := snapB.Restore(state); err != nil {
				t.Fatalf("re-restore: %v", err)
			}

			for _, batch := range tail {
				a.Observe(batch)
				b.Observe(batch)
			}
			if f := cl.Caps(a).Finisher; f != nil {
				f.Finish()
				cl.Caps(b).Finisher.Finish()
			}

			finalA, err := snapA.Snapshot()
			if err != nil {
				t.Fatalf("final snapshot a: %v", err)
			}
			finalB, err := snapB.Snapshot()
			if err != nil {
				t.Fatalf("final snapshot b: %v", err)
			}
			if !bytes.Equal(finalA, finalB) {
				t.Fatalf("%s: resumed learner state diverged from original (%d vs %d bytes)",
					tc.name, len(finalA), len(finalB))
			}
			for _, s := range set.Test {
				if a.Predict(s.Z) != b.Predict(s.Z) {
					t.Fatalf("%s: predictions diverged on test sample %d", tc.name, s.ID)
				}
			}
		})
	}
}
