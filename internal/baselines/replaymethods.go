package baselines

import (
	"math/rand"
	"time"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/replay"
	"chameleon/internal/tensor"
)

// ER is Experience Replay (Chaudhry et al., 2019): a reservoir-sampled
// buffer whose contents are interleaved with each incoming batch. The paper's
// ER stores raw input images; the equal-information latents are replayed
// here (f is frozen), while memcost charges raw-image bytes and the hardware
// models charge the re-extraction compute.
type ER struct {
	head     *cl.Head
	cfg      Config
	buf      *replay.Reservoir
	src      *checkpoint.Source
	trainBuf []cl.LatentSample // reusable incoming+replay assembly buffer
	drawBuf  []replay.Item     // reusable buffer-draw scratch
	met      observeTimer
}

// NewER creates the ER learner.
func NewER(head *cl.Head, cfg Config) *ER {
	cfg = cfg.withDefaults()
	rng, src := cfg.rngSource(2)
	buf := replay.NewReservoir(cfg.BufferSize, rng)
	if cfg.ReplayInt8 {
		// The buffer is freshly constructed and empty: enabling cannot fail.
		if err := buf.EnableInt8(); err != nil {
			panic(err)
		}
	}
	return &ER{head: head, cfg: cfg, buf: buf, src: src,
		met: newObserveTimer("er")}
}

// Name implements cl.Learner.
func (e *ER) Name() string { return "er" }

// Predict implements cl.Learner.
func (e *ER) Predict(z *tensor.Tensor) int { return e.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (e *ER) PredictBatch(zs []*tensor.Tensor, out []int) { e.head.PredictBatch(zs, out) }

// Observe implements cl.Learner.
func (e *ER) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	defer e.met.observe(time.Now(), len(b.Samples))
	train := append(e.trainBuf[:0], b.Samples...)
	drawn := e.buf.SampleInto(e.drawBuf[:0], e.cfg.ReplaySize)
	e.drawBuf = drawn
	e.cfg.Meter.AddOffChip(int64(len(drawn)), 0)
	for _, it := range drawn {
		train = append(train, cl.LatentSample{Z: it.Z, Label: it.Label})
	}
	e.trainBuf = train
	e.head.TrainCEOn(train)
	for _, s := range b.Samples {
		if e.buf.Offer(replay.Item{Z: s.Z, Label: s.Label}) {
			e.cfg.Meter.AddOffChip(0, 1)
		}
	}
}

// Buffer exposes the reservoir (tests, memory accounting).
func (e *ER) Buffer() *replay.Reservoir { return e.buf }

// DER is Dark Experience Replay++ (Buzzega et al., 2020): the buffer stores
// the model's logits at insertion time; replay combines a logit-matching MSE
// term (dark knowledge) with a cross-entropy term on a second buffer draw.
type DER struct {
	head *cl.Head
	cfg  Config
	buf  *replay.Reservoir
	src  *checkpoint.Source
	met  observeTimer
	// drawBuf is the reusable buffer-draw scratch for both replay terms.
	drawBuf []replay.Item
	// Alpha weighs the MSE logit term; Beta the replay CE term (DER++).
	Alpha, Beta float64
}

// NewDER creates the DER++ learner. With Config.ReplayInt8 the latents are
// quantized in the reservoir while the stored teacher logits stay fp32 (they
// are the distillation target, tiny next to the latent payload).
func NewDER(head *cl.Head, cfg Config) *DER {
	cfg = cfg.withDefaults()
	rng, src := cfg.rngSource(3)
	buf := replay.NewReservoir(cfg.BufferSize, rng)
	if cfg.ReplayInt8 {
		if err := buf.EnableInt8(); err != nil {
			panic(err)
		}
	}
	return &DER{head: head, cfg: cfg, buf: buf, src: src,
		met: newObserveTimer("der"), Alpha: 0.5, Beta: 0.5}
}

// Name implements cl.Learner.
func (d *DER) Name() string { return "der" }

// Predict implements cl.Learner.
func (d *DER) Predict(z *tensor.Tensor) int { return d.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (d *DER) PredictBatch(zs []*tensor.Tensor, out []int) { d.head.PredictBatch(zs, out) }

// Observe implements cl.Learner.
func (d *DER) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	defer d.met.observe(time.Now(), len(b.Samples))
	d.head.ZeroGrad()
	count := 0
	for _, s := range b.Samples {
		d.head.AccumulateCE(s.Z, s.Label, 1)
		count++
	}
	d.drawBuf = d.buf.SampleInto(d.drawBuf[:0], d.cfg.ReplaySize)
	for _, it := range d.drawBuf {
		d.head.AccumulateMSE(it.Z, it.Logits, d.Alpha)
		count++
	}
	d.drawBuf = d.buf.SampleInto(d.drawBuf[:0], d.cfg.ReplaySize)
	for _, it := range d.drawBuf {
		d.head.AccumulateCE(it.Z, it.Label, d.Beta)
		count++
	}
	d.head.Step(float64(count))
	// Insert with the logits the model produces *now* (post-update, as the
	// reference implementation records the response it trained to).
	for _, s := range b.Samples {
		d.buf.Offer(replay.Item{Z: s.Z, Label: s.Label, Logits: d.head.Logits(s.Z).Clone()})
	}
}

// LatentReplay (Pellegrini et al., 2020) stores intermediate activations in a
// single unified buffer with uniform random replacement once full, replaying
// a fixed-size draw with every batch. It is Chameleon's closest relative —
// same payload, single buffer, no hierarchy awareness.
type LatentReplay struct {
	head  *cl.Head
	cfg   Config
	items []replay.Item
	seen  int
	rng   *rand.Rand
	src   *checkpoint.Source
	// codec, when non-nil (Config.ReplayInt8), quantizes items on insertion
	// and decodes draws into per-position scratch — this is the method the
	// quantized-latent-replay literature actually describes (Ravaglia et al.).
	codec    *replay.Int8Codec
	trainBuf []cl.LatentSample // reusable incoming+replay assembly buffer
	met      observeTimer
}

// NewLatentReplay creates the Latent Replay learner.
func NewLatentReplay(head *cl.Head, cfg Config) *LatentReplay {
	cfg = cfg.withDefaults()
	rng, src := cfg.rngSource(4)
	l := &LatentReplay{head: head, cfg: cfg, rng: rng, src: src, met: newObserveTimer("latent")}
	if cfg.ReplayInt8 {
		l.codec = replay.NewInt8Codec()
	}
	return l
}

// Name implements cl.Learner.
func (l *LatentReplay) Name() string { return "latent" }

// Predict implements cl.Learner.
func (l *LatentReplay) Predict(z *tensor.Tensor) int { return l.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (l *LatentReplay) PredictBatch(zs []*tensor.Tensor, out []int) { l.head.PredictBatch(zs, out) }

// Observe implements cl.Learner.
func (l *LatentReplay) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	defer l.met.observe(time.Now(), len(b.Samples))
	train := append(l.trainBuf[:0], b.Samples...)
	if len(l.items) > 0 {
		n := l.cfg.ReplaySize
		l.cfg.Meter.AddOffChip(int64(n), 0)
		for i := 0; i < n; i++ {
			it := l.items[l.rng.Intn(len(l.items))]
			if l.codec != nil {
				// Slot = position in this draw; the decode is consumed by
				// TrainCEOn before the next draw reuses the scratch.
				it = l.codec.Decode(it, i)
			}
			train = append(train, cl.LatentSample{Z: it.Z, Label: it.Label})
		}
	}
	l.trainBuf = train
	l.head.TrainCEOn(train)
	for _, s := range b.Samples {
		it := replay.Item{Z: s.Z, Label: s.Label}
		if len(l.items) < l.cfg.BufferSize {
			if l.codec != nil {
				it = l.codec.Encode(it, nil)
			}
			l.items = append(l.items, it)
		} else {
			// Draw the victim before encoding so the RNG stream matches the
			// fp32 path exactly (encoding consumes no randomness).
			vi := l.rng.Intn(len(l.items))
			if l.codec != nil {
				it = l.codec.Encode(it, l.items[vi].QZ)
			}
			l.items[vi] = it
		}
		l.cfg.Meter.AddOffChip(0, 1)
		l.seen++
	}
}

// Len reports the buffer fill (tests).
func (l *LatentReplay) Len() int { return len(l.items) }
