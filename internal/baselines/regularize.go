package baselines

import (
	"chameleon/internal/cl"
	"chameleon/internal/tensor"
)

// EWCPP is online Elastic Weight Consolidation (EWC++, Chaudhry et al. 2018):
// a running diagonal Fisher information estimate F and a parameter anchor θ*
// penalise movement away from weights important to previous domains:
// L = CE + λ·Σ F_i (θ_i − θ*_i)². The Fisher is an exponential moving
// average of squared gradients; the anchor refreshes at domain boundaries.
type EWCPP struct {
	head   *cl.Head
	cfg    Config
	fisher []*tensor.Tensor
	anchor []*tensor.Tensor
	// gamma is the Fisher EMA decay.
	gamma      float64
	lastDomain int
	seen       bool
}

// NewEWCPP creates the EWC++ learner.
func NewEWCPP(head *cl.Head, cfg Config) *EWCPP {
	cfg = cfg.withDefaults()
	e := &EWCPP{head: head, cfg: cfg, gamma: 0.95, lastDomain: -1}
	for _, p := range head.Params() {
		e.fisher = append(e.fisher, tensor.New(p.Data.Shape()...))
	}
	e.anchor = head.Snapshot()
	return e
}

// Name implements cl.Learner.
func (e *EWCPP) Name() string { return "ewcpp" }

// Predict implements cl.Learner.
func (e *EWCPP) Predict(z *tensor.Tensor) int { return e.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (e *EWCPP) PredictBatch(zs []*tensor.Tensor, out []int) { e.head.PredictBatch(zs, out) }

// Observe implements cl.Learner.
func (e *EWCPP) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	if e.seen && b.Domain != e.lastDomain {
		// Domain boundary: consolidate — the anchor becomes the current
		// weights, protected by the accumulated Fisher.
		e.anchor = e.head.Snapshot()
	}
	e.lastDomain, e.seen = b.Domain, true

	e.head.ZeroGrad()
	for _, s := range b.Samples {
		e.head.AccumulateCE(s.Z, s.Label, 1)
	}
	params := e.head.Params()
	n := float32(len(b.Samples))
	for i, p := range params {
		g := p.Grad.Data()
		f := e.fisher[i].Data()
		a := e.anchor[i].Data()
		w := p.Data.Data()
		for j := range g {
			g[j] /= n
			// Fisher EMA over the data-loss gradient (before the penalty).
			f[j] = float32(e.gamma)*f[j] + (1-float32(e.gamma))*g[j]*g[j]
			// Quadratic penalty gradient.
			g[j] += float32(2*e.cfg.Lambda) * f[j] * (w[j] - a[j])
		}
	}
	e.head.Step(1)
}

// LwF is Learning without Forgetting (Li & Hoiem): at each domain boundary
// the current model is frozen as a teacher; subsequent training distils the
// teacher's soft responses on the *incoming* data alongside the hard labels,
// with no stored samples at all.
type LwF struct {
	head       *cl.Head
	cfg        Config
	teacher    []*tensor.Tensor // teacher parameter snapshot
	hasTeacher bool
	lastDomain int
	seen       bool
}

// NewLwF creates the LwF learner.
func NewLwF(head *cl.Head, cfg Config) *LwF {
	return &LwF{head: head, cfg: cfg.withDefaults(), lastDomain: -1}
}

// Name implements cl.Learner.
func (l *LwF) Name() string { return "lwf" }

// Predict implements cl.Learner.
func (l *LwF) Predict(z *tensor.Tensor) int { return l.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (l *LwF) PredictBatch(zs []*tensor.Tensor, out []int) { l.head.PredictBatch(zs, out) }

// Observe implements cl.Learner.
func (l *LwF) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	if l.seen && b.Domain != l.lastDomain {
		l.teacher = l.head.Snapshot()
		l.hasTeacher = true
	}
	l.lastDomain, l.seen = b.Domain, true

	// Teacher logits must be computed with the snapshot weights: swap in,
	// evaluate, swap back.
	var teacherLogits []*tensor.Tensor
	if l.hasTeacher {
		current := l.head.Snapshot()
		l.head.Restore(l.teacher)
		teacherLogits = make([]*tensor.Tensor, len(b.Samples))
		for i, s := range b.Samples {
			teacherLogits[i] = l.head.Logits(s.Z).Clone()
		}
		l.head.Restore(current)
	}
	l.head.ZeroGrad()
	for i, s := range b.Samples {
		l.head.AccumulateCE(s.Z, s.Label, 1)
		if teacherLogits != nil {
			l.head.AccumulateSoft(s.Z, teacherLogits[i], l.cfg.Temperature, l.cfg.Lambda)
		}
	}
	l.head.Step(float64(len(b.Samples)))
}
