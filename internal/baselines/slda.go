package baselines

import (
	"math"

	"chameleon/internal/cl"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// SLDA is deep streaming linear discriminant analysis (Hayes & Kanan, 2020):
// a non-parametric classifier over pooled deep features that maintains
// per-class running means and a shared streaming covariance matrix, and
// classifies with the precision-weighted nearest-class-mean rule
// score_c = w_cᵀ x + b_c, w_c = Λ μ_c, b_c = −½ μ_cᵀ Λ μ_c, Λ = ((1−ε)Σ+εI)⁻¹.
//
// The O(d³) matrix inversion is the method's hardware Achilles' heel the
// paper exploits in Table II; InversionCount exposes how often it ran so the
// hardware models can charge for it.
type SLDA struct {
	// Shrinkage is ε in Λ = ((1−ε)Σ + εI)⁻¹ (default 1e-2).
	Shrinkage float64
	// RecomputeEvery controls how often Λ is refreshed, in observed samples.
	// The reference implementation inverts per prediction; 1 matches the
	// paper's per-image cost accounting.
	RecomputeEvery int

	dim     int
	classes int
	means   *tensor.Tensor // [classes, dim]
	counts  []float64
	cov     *tensor.Tensor // [dim, dim] streaming covariance (scatter/n)
	n       float64
	lambda  *tensor.Tensor // cached precision
	stale   bool
	// w caches the per-class score weights w_c = Λ μ_c as rows of a
	// [classes, dim] matrix, with bias_c = −½ μ_cᵀ w_c alongside; wRows holds
	// per-class views into w so the prediction hot loop allocates nothing.
	// The cache depends on the *current* means even when the Λ refresh is
	// skipped (RecomputeEvery > 1), so scoresStale is raised on every Observe
	// — and by checkpoint restore — not just on inversion.
	w           *tensor.Tensor
	wRows       []*tensor.Tensor
	bias        []float64
	scoresStale bool
	inversion   int
	sinceInv    int
}

// NewSLDA creates a streaming LDA over pooled latents of the given dimension
// and class count.
func NewSLDA(dim, classes int, cfg Config) *SLDA {
	s := &SLDA{
		Shrinkage:      1e-2,
		RecomputeEvery: 1,
		dim:            dim,
		classes:        classes,
		means:          tensor.New(classes, dim),
		counts:         make([]float64, classes),
		cov:            tensor.New(dim, dim),
	}
	_ = cfg
	return s
}

// Name implements cl.Learner.
func (s *SLDA) Name() string { return "slda" }

// pool averages a [C,H,W] latent into a [C] feature vector (SLDA operates on
// pooled deep features).
func pool(z *tensor.Tensor) *tensor.Tensor {
	if z.NDim() == 1 {
		return z
	}
	return tensor.GlobalAvgPool(z)
}

// Observe implements cl.Learner: streaming mean/covariance updates.
func (s *SLDA) Observe(b cl.LatentBatch) {
	for _, smp := range b.Samples {
		x := pool(smp.Z)
		c := smp.Label
		// Covariance update uses the pre-update class mean (Hayes & Kanan
		// eq. 3): Σ ← (nΣ + δδᵀ·n/(n+1))/(n+1) with δ = x − μ_c.
		mu := s.means.Row(c)
		delta := tensor.Sub(x, mu)
		w := s.n / (s.n + 1)
		for i := 0; i < s.dim; i++ {
			di := delta.Data()[i]
			if di == 0 {
				continue
			}
			row := s.cov.Data()[i*s.dim : (i+1)*s.dim]
			f := float32(w) * di / float32(s.n+1)
			for j, dj := range delta.Data() {
				row[j] = row[j]*float32(s.n/(s.n+1)) + f*dj
			}
		}
		s.n++
		// Class-mean update.
		cnt := s.counts[c]
		for i := 0; i < s.dim; i++ {
			mu.Data()[i] = (mu.Data()[i]*float32(cnt) + x.Data()[i]) / float32(cnt+1)
		}
		s.counts[c]++
		s.stale = true
		s.scoresStale = true
		s.sinceInv++
	}
}

// refresh recomputes the precision matrix if stale.
func (s *SLDA) refresh() {
	if !s.stale && s.lambda != nil {
		return
	}
	if s.RecomputeEvery > 1 && s.lambda != nil && s.sinceInv < s.RecomputeEvery {
		return
	}
	a := tensor.New(s.dim, s.dim)
	eps := float32(s.Shrinkage)
	for i := 0; i < s.dim; i++ {
		for j := 0; j < s.dim; j++ {
			v := (1 - eps) * s.cov.Data()[i*s.dim+j]
			if i == j {
				v += eps
			}
			a.Data()[i*s.dim+j] = v
		}
	}
	inv, err := tensor.Inverse(a)
	if err != nil {
		// Shrinkage guarantees positive-definiteness in exact arithmetic; a
		// numerical failure falls back to the identity metric.
		inv = tensor.New(s.dim, s.dim)
		for i := 0; i < s.dim; i++ {
			inv.Data()[i*s.dim+i] = 1
		}
	}
	s.lambda = inv
	s.inversion++
	s.sinceInv = 0
	s.stale = false
}

// ensureScores refreshes Λ if due, then rebuilds the cached per-class weight
// rows and biases when anything they depend on moved. The expensive part of
// the old per-Predict loop (w_c = Λ μ_c per class, per call) now runs once per
// Observe→Predict transition instead of once per prediction; the resulting
// scores are bit-identical because the same MatVecInto/Dot kernels produce the
// same values, and IEEE a − 0.5b equals a + (−0.5·b) exactly.
func (s *SLDA) ensureScores() {
	s.refresh()
	if !s.scoresStale && s.w != nil {
		return
	}
	if s.w == nil {
		s.w = tensor.New(s.classes, s.dim)
		s.wRows = make([]*tensor.Tensor, s.classes)
		for c := range s.wRows {
			s.wRows[c] = s.w.Row(c)
		}
		s.bias = make([]float64, s.classes)
	}
	for c := 0; c < s.classes; c++ {
		if s.counts[c] == 0 {
			continue
		}
		mu := s.means.Row(c)
		tensor.MatVecInto(s.wRows[c], s.lambda, mu)
		s.bias[c] = -0.5 * tensor.Dot(mu, s.wRows[c])
	}
	s.scoresStale = false
}

// classify scores one pooled feature against the cached weights.
func (s *SLDA) classify(x *tensor.Tensor) int {
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < s.classes; c++ {
		if s.counts[c] == 0 {
			continue
		}
		// score = w_cᵀ x − ½ μ_cᵀ w_c, with the second term precomputed.
		score := tensor.Dot(s.wRows[c], x) + s.bias[c]
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// Predict implements cl.Learner.
func (s *SLDA) Predict(z *tensor.Tensor) int {
	s.ensureScores()
	return s.classify(pool(z))
}

// PredictBatch implements cl.BatchPredictor: one cache refresh, then the pool
// shards over the worker pool — each sample writes only its own slot, and the
// per-sample scoring is the exact Predict loop, so any worker count matches
// the serial path bit for bit.
func (s *SLDA) PredictBatch(zs []*tensor.Tensor, out []int) {
	if len(zs) == 0 {
		return
	}
	s.ensureScores()
	parallel.For(len(zs), 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = s.classify(pool(zs[i]))
		}
	})
}

// InversionCount reports how many O(d³) inversions have run (hardware cost).
func (s *SLDA) InversionCount() int { return s.inversion }

// Dim returns the pooled feature dimension (hardware cost input).
func (s *SLDA) Dim() int { return s.dim }
