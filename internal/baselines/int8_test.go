package baselines

import (
	"bytes"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
)

// int8Cfg mirrors the fp32 resume-continuity configs with quantized buffers.
func int8Cfg(bufferSize int, seed int64) Config {
	return Config{BufferSize: bufferSize, Seed: seed, ReplayInt8: true}
}

// TestQuantizedBaselineSnapshotResumeContinuity is the crash contract for the
// buffered baselines running with -replay-int8: observe a prefix, snapshot,
// restore into a fresh quantized instance, feed both the identical tail and
// require byte-identical final snapshots and predictions. Because the buffers
// checkpoint their canonical (QZ, Scale) records, the round trip is bit-exact
// and because victims are drawn before encoding, the RNG stream matches a
// never-interrupted quantized run.
func TestQuantizedBaselineSnapshotResumeContinuity(t *testing.T) {
	set := env(t)
	const seed = 17

	cases := []struct {
		name string
		mk   func() cl.Learner
	}{
		{"er", func() cl.Learner { return NewER(headM(set, seed), int8Cfg(20, seed)) }},
		{"der", func() cl.Learner { return NewDER(headM(set, seed), int8Cfg(15, seed)) }},
		{"latent", func() cl.Learner { return NewLatentReplay(headM(set, seed), int8Cfg(20, seed)) }},
		{"gss", func() cl.Learner { return NewGSS(headM(set, seed), int8Cfg(10, seed)) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const splitAt = 5
			a := tc.mk()
			snapA := cl.Caps(a).Snapshotter
			stream := set.Stream(seed, data.StreamOptions{BatchSize: 10})
			var tail []cl.LatentBatch
			for i := 0; ; i++ {
				b, ok := stream.Next()
				if !ok {
					break
				}
				if i < splitAt {
					a.Observe(b)
				} else {
					tail = append(tail, b)
				}
			}

			state, err := snapA.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			b := tc.mk()
			snapB := cl.Caps(b).Snapshotter
			if err := snapB.Restore(state); err != nil {
				t.Fatalf("restore: %v", err)
			}

			for _, batch := range tail {
				a.Observe(batch)
				b.Observe(batch)
			}
			finalA, err := snapA.Snapshot()
			if err != nil {
				t.Fatalf("final snapshot a: %v", err)
			}
			finalB, err := snapB.Snapshot()
			if err != nil {
				t.Fatalf("final snapshot b: %v", err)
			}
			if !bytes.Equal(finalA, finalB) {
				t.Fatalf("%s: resumed quantized learner diverged (%d vs %d bytes)",
					tc.name, len(finalA), len(finalB))
			}
			for _, s := range set.Test {
				if a.Predict(s.Z) != b.Predict(s.Z) {
					t.Fatalf("%s: predictions diverged on test sample %d", tc.name, s.ID)
				}
			}
		})
	}
}

// TestQuantizedBaselineCrossDtypeRestoreErrors pins the dtype tag for every
// buffered baseline: an fp32 snapshot cannot restore into a quantized learner
// and vice versa.
func TestQuantizedBaselineCrossDtypeRestoreErrors(t *testing.T) {
	set := env(t)
	const seed = 29

	type pair struct {
		name string
		fp32 func() cl.Learner
		int8 func() cl.Learner
	}
	cases := []pair{
		{"er",
			func() cl.Learner { return NewER(headM(set, seed), Config{BufferSize: 10, Seed: seed}) },
			func() cl.Learner { return NewER(headM(set, seed), int8Cfg(10, seed)) }},
		{"der",
			func() cl.Learner { return NewDER(headM(set, seed), Config{BufferSize: 10, Seed: seed}) },
			func() cl.Learner { return NewDER(headM(set, seed), int8Cfg(10, seed)) }},
		{"latent",
			func() cl.Learner { return NewLatentReplay(headM(set, seed), Config{BufferSize: 10, Seed: seed}) },
			func() cl.Learner { return NewLatentReplay(headM(set, seed), int8Cfg(10, seed)) }},
		{"gss",
			func() cl.Learner { return NewGSS(headM(set, seed), Config{BufferSize: 8, Seed: seed}) },
			func() cl.Learner { return NewGSS(headM(set, seed), int8Cfg(8, seed)) }},
	}
	drive := func(l cl.Learner) {
		st := set.Stream(seed, data.StreamOptions{BatchSize: 10})
		for i := 0; i < 4; i++ {
			b, ok := st.Next()
			if !ok {
				break
			}
			l.Observe(b)
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f, q := tc.fp32(), tc.int8()
			drive(f)
			drive(q)
			fSnap, err := cl.Caps(f).Snapshotter.Snapshot()
			if err != nil {
				t.Fatalf("fp32 snapshot: %v", err)
			}
			qSnap, err := cl.Caps(q).Snapshotter.Snapshot()
			if err != nil {
				t.Fatalf("int8 snapshot: %v", err)
			}
			if err := cl.Caps(tc.int8()).Snapshotter.Restore(fSnap); err == nil {
				t.Fatal("fp32 snapshot restored into int8 learner")
			}
			if err := cl.Caps(tc.fp32()).Snapshotter.Restore(qSnap); err == nil {
				t.Fatal("int8 snapshot restored into fp32 learner")
			}
			// Matching dtypes keep working.
			if err := cl.Caps(tc.int8()).Snapshotter.Restore(qSnap); err != nil {
				t.Fatalf("int8→int8 restore failed: %v", err)
			}
			if err := cl.Caps(tc.fp32()).Snapshotter.Restore(fSnap); err != nil {
				t.Fatalf("fp32→fp32 restore failed: %v", err)
			}
		})
	}
}

// TestQuantizedDERKeepsLogitsFP32 pins DER's split representation: buffered
// latents are quantized, the distillation logits ride along in fp32.
func TestQuantizedDERKeepsLogitsFP32(t *testing.T) {
	set := env(t)
	d := NewDER(headM(set, 7), int8Cfg(10, 7))
	st := set.Stream(7, data.StreamOptions{BatchSize: 10})
	for i := 0; i < 3; i++ {
		b, ok := st.Next()
		if !ok {
			break
		}
		d.Observe(b)
	}
	items, _ := d.buf.State()
	if len(items) == 0 {
		t.Fatal("buffer empty after 3 batches")
	}
	for i, it := range items {
		if !it.Quantized() {
			t.Fatalf("item %d latent not quantized", i)
		}
		if it.Logits == nil {
			t.Fatalf("item %d lost its fp32 logits", i)
		}
	}
}
