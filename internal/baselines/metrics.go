package baselines

import (
	"time"

	"chameleon/internal/obs"
)

// observeTimer is the per-method step instrumentation: each learner resolves
// its own name-suffixed handles at construction (the registry has no label
// dimension, so the method name is baked into the metric name), and Observe
// pays only a clock read plus three atomic updates.
type observeTimer struct {
	seconds *obs.Histogram
	batches *obs.Counter
	samples *obs.Counter
}

func newObserveTimer(name string) observeTimer {
	r := obs.Default()
	return observeTimer{
		seconds: r.Histogram("baseline_observe_seconds_" + name),
		batches: r.Counter("baseline_observe_batches_total_" + name),
		samples: r.Counter("baseline_observe_samples_total_" + name),
	}
}

func (t observeTimer) observe(t0 time.Time, samples int) {
	t.batches.Add(1)
	t.samples.Add(int64(samples))
	t.seconds.ObserveSince(t0)
}
