package baselines

import (
	"math"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/tensor"
	"chameleon/internal/testenv"
)

// env returns the shared TestScale CORe50 environment (10 classes, held-out
// domains, pretrained backbone).
func env(t *testing.T) *cl.LatentSet {
	t.Helper()
	return testenv.Env(t, "core50")
}

func head(set *cl.LatentSet, seed int64) *cl.Head {
	return cl.NewHead(set.Backbone, cl.HeadConfig{LR: testenv.Scale().HeadLR, Seed: seed})
}

func runStream(set *cl.LatentSet, l cl.Learner, seed int64) cl.Result {
	st := set.Stream(seed, data.StreamOptions{BatchSize: 10})
	return cl.RunOnline(l, st, set.Test)
}

const chance = 0.1 // 10 classes

func TestFinetuneRunsAndLearnsSomething(t *testing.T) {
	set := env(t)
	res := runStream(set, NewFinetune(head(set, 1)), 1)
	if res.AccAll <= 2*chance {
		t.Fatalf("finetune acc = %v, want well above chance", res.AccAll)
	}
}

func TestJointBeatsFinetune(t *testing.T) {
	set := env(t)
	ft := runStream(set, NewFinetune(head(set, 2)), 2)
	jh := cl.NewHead(set.Backbone, cl.HeadConfig{LR: testenv.Scale().JointLR, Seed: 2})
	jt := runStream(set, NewJoint(jh, Config{Epochs: testenv.Scale().JointEpochs, Seed: 2}), 2)
	if jt.AccAll <= ft.AccAll {
		t.Fatalf("joint (%v) should beat finetune (%v)", jt.AccAll, ft.AccAll)
	}
	if jt.AccAll < 0.6 {
		t.Fatalf("joint acc = %v, too low", jt.AccAll)
	}
}

func TestJointEmptyFinishIsSafe(t *testing.T) {
	set := env(t)
	j := NewJoint(head(set, 3), Config{Seed: 3})
	j.Finish() // no samples observed: must not panic
}

func TestERFillsBufferAndLearns(t *testing.T) {
	set := env(t)
	er := NewER(head(set, 4), Config{BufferSize: 30, Seed: 4})
	res := runStream(set, er, 4)
	if er.Buffer().Len() != 30 {
		t.Fatalf("buffer fill = %d", er.Buffer().Len())
	}
	if res.AccAll <= 3*chance {
		t.Fatalf("er acc = %v", res.AccAll)
	}
}

func TestDERStoresLogitsAndLearns(t *testing.T) {
	set := env(t)
	der := NewDER(head(set, 5), Config{BufferSize: 20, Seed: 5})
	res := runStream(set, der, 5)
	if res.AccAll <= 3*chance {
		t.Fatalf("der acc = %v", res.AccAll)
	}
	classes := set.Dataset.Cfg.NumClasses
	for _, it := range der.buf.Items() {
		if it.Logits == nil || it.Logits.Len() != classes {
			t.Fatal("der buffer item missing logits")
		}
	}
}

func TestLatentReplayBufferBehaviour(t *testing.T) {
	set := env(t)
	lr := NewLatentReplay(head(set, 6), Config{BufferSize: 25, Seed: 6})
	res := runStream(set, lr, 6)
	if lr.Len() != 25 {
		t.Fatalf("latent replay fill = %d", lr.Len())
	}
	if res.AccAll <= 3*chance {
		t.Fatalf("latent replay acc = %v", res.AccAll)
	}
}

func TestReplayBeatsFinetuneOnAverage(t *testing.T) {
	// The paper's core claim at small budgets: replay > naive finetuning.
	// Averaged over seeds to damp run noise.
	set := env(t)
	seeds := []int64{1, 2, 3}
	var ft, er float64
	for _, sd := range seeds {
		ft += runStream(set, NewFinetune(head(set, sd)), sd).AccAll
		er += runStream(set, NewER(head(set, sd), Config{BufferSize: 80, Seed: sd}), sd).AccAll
	}
	// The 10-class test tier is easy enough that naive finetuning barely
	// forgets, so assert non-inferiority here; the full replay-vs-finetune
	// gap is asserted at the harness level (exp integration test) and shown
	// at small scale in EXPERIMENTS.md.
	if er < ft-0.15 {
		t.Fatalf("ER-80 mean (%v) far below finetune mean (%v)", er/3, ft/3)
	}
}

func TestGSSBufferDiversitySelection(t *testing.T) {
	set := env(t)
	g := NewGSS(head(set, 7), Config{BufferSize: 15, Seed: 7})
	res := runStream(set, g, 7)
	if g.Len() != 15 {
		t.Fatalf("gss fill = %d", g.Len())
	}
	if res.AccAll <= 2*chance {
		t.Fatalf("gss acc = %v", res.AccAll)
	}
	for _, it := range g.buf {
		if it.sketch == nil || it.sketch.Len() != g.SketchDim {
			t.Fatal("gss item missing gradient sketch")
		}
		if math.IsNaN(it.score) {
			t.Fatal("gss score NaN")
		}
	}
}

func TestEWCConsolidatesAtDomainBoundary(t *testing.T) {
	set := env(t)
	e := NewEWCPP(head(set, 8), Config{Lambda: 1, Seed: 8})
	b1 := cl.LatentBatch{Samples: set.Train[:3], Domain: set.Train[0].Domain}
	e.Observe(b1)
	anchorBefore := e.anchor[0].Clone()
	var other []cl.LatentSample
	for _, s := range set.Train {
		if s.Domain != b1.Domain {
			other = append(other, s)
			break
		}
	}
	e.Observe(cl.LatentBatch{Samples: other, Domain: other[0].Domain})
	changed := false
	for i, v := range e.anchor[0].Data() {
		if v != anchorBefore.Data()[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("EWC anchor did not move at domain boundary")
	}
	for _, f := range e.fisher {
		for _, v := range f.Data() {
			if v < 0 {
				t.Fatal("negative Fisher entry")
			}
		}
	}
	if res := runStream(set, NewEWCPP(head(set, 8), Config{Lambda: 1, Seed: 8}), 8); res.AccAll <= 2*chance {
		t.Fatalf("ewc acc = %v", res.AccAll)
	}
}

func TestLwFUsesTeacherAfterBoundary(t *testing.T) {
	set := env(t)
	l := NewLwF(head(set, 9), Config{Lambda: 1, Temperature: 2, Seed: 9})
	b1 := cl.LatentBatch{Samples: set.Train[:3], Domain: set.Train[0].Domain}
	l.Observe(b1)
	if l.hasTeacher {
		t.Fatal("teacher should not exist before a boundary")
	}
	var other []cl.LatentSample
	for _, s := range set.Train {
		if s.Domain != b1.Domain {
			other = append(other, s)
			break
		}
	}
	l.Observe(cl.LatentBatch{Samples: other, Domain: other[0].Domain})
	if !l.hasTeacher {
		t.Fatal("teacher missing after domain boundary")
	}
	if res := runStream(set, NewLwF(head(set, 9), Config{Seed: 9}), 9); res.AccAll <= 2*chance {
		t.Fatalf("lwf acc = %v", res.AccAll)
	}
}

func TestSLDALearnsStrongly(t *testing.T) {
	set := env(t)
	dim := set.Backbone.LatentShape[0]
	s := NewSLDA(dim, set.Dataset.Cfg.NumClasses, Config{Seed: 10})
	res := runStream(set, s, 10)
	if res.AccAll < 0.5 {
		t.Fatalf("slda acc = %v, expected strong streaming classifier", res.AccAll)
	}
	if s.InversionCount() == 0 {
		t.Fatal("slda never inverted its covariance")
	}
}

func TestSLDAPredictBeforeAnyData(t *testing.T) {
	s := NewSLDA(8, 3, Config{})
	z := tensor.New(8)
	if got := s.Predict(z); got != 0 {
		t.Fatalf("empty SLDA predicted %d", got)
	}
}

func TestSLDAMeansTrackClasses(t *testing.T) {
	s := NewSLDA(2, 2, Config{})
	mk := func(a, b float32) *tensor.Tensor { return tensor.FromSlice([]float32{a, b}, 2) }
	for i := 0; i < 30; i++ {
		s.Observe(cl.LatentBatch{Samples: []cl.LatentSample{
			{Z: mk(1, 0), Label: 0},
			{Z: mk(0, 1), Label: 1},
		}})
	}
	if s.Predict(mk(0.9, 0.1)) != 0 || s.Predict(mk(0.1, 0.9)) != 1 {
		t.Fatal("slda failed on separable 2-D task")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ReplaySize != 10 || c.Lambda != 1 || c.Temperature != 2 || c.Epochs != 4 {
		t.Fatalf("defaults: %+v", c)
	}
}
