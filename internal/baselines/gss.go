package baselines

import (
	"math"
	"math/rand"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/nn"
	"chameleon/internal/replay"
	"chameleon/internal/tensor"
)

// GSS is Gradient-based Sample Selection (GSS-Greedy, Aljundi et al., 2019):
// each buffered sample carries a gradient-direction sketch; a candidate is
// scored by its maximum cosine similarity against a random subset of the
// buffer, and it replaces a similarity-weighted victim only when it is more
// gradient-diverse. The stored gradient vectors are what give GSS its
// out-sized memory footprint in Table I (up to 10× ER per sample).
type GSS struct {
	head *cl.Head
	cfg  Config
	buf  []gssItem
	rng  *rand.Rand
	src  *checkpoint.Source
	// SketchDim is the random-projection width of the stored gradient
	// (the paper's implementation stores full gradients; the projection
	// preserves cosine geometry at a fraction of the runtime cost, while
	// memcost still charges full-gradient bytes).
	SketchDim int
	proj      *tensor.Tensor // lazy [SketchDim, gradDim] projection
	// SubsetSize is how many buffer items a candidate is compared against.
	SubsetSize int
	// codec, when non-nil (Config.ReplayInt8), quantizes buffered latents;
	// the gradient sketches stay fp32 — they are scoring state, not replay
	// payload, and memcost already charges them separately.
	codec    *replay.Int8Codec
	trainBuf []cl.LatentSample // reusable incoming+replay assembly buffer
}

type gssItem struct {
	it     replay.Item
	score  float64 // max cosine similarity recorded at insertion
	sketch *tensor.Tensor
}

// NewGSS creates the GSS-Greedy learner.
func NewGSS(head *cl.Head, cfg Config) *GSS {
	cfg = cfg.withDefaults()
	rng, src := cfg.rngSource(5)
	g := &GSS{head: head, cfg: cfg, rng: rng, src: src, SketchDim: 128, SubsetSize: 10}
	if cfg.ReplayInt8 {
		g.codec = replay.NewInt8Codec()
	}
	return g
}

// Name implements cl.Learner.
func (g *GSS) Name() string { return "gss" }

// Predict implements cl.Learner.
func (g *GSS) Predict(z *tensor.Tensor) int { return g.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (g *GSS) PredictBatch(zs []*tensor.Tensor, out []int) { g.head.PredictBatch(zs, out) }

// gradSketch computes the random-projected gradient of the CE loss with
// respect to the head's final parameter block for one sample.
func (g *GSS) gradSketch(s cl.LatentSample) *tensor.Tensor {
	g.head.ZeroGrad()
	g.head.AccumulateCE(s.Z, s.Label, 1)
	params := g.head.Params()
	// Use the last weight matrix (largest, most informative block).
	var last *nn.Param
	for _, p := range params {
		if last == nil || p.Numel() >= last.Numel() {
			last = p
		}
	}
	grad := last.Grad
	if g.proj == nil {
		projRng := cl.RNG(g.cfg.Seed, 6)
		g.proj = tensor.RandNormal(projRng, 1/math.Sqrt(float64(grad.Len())), g.SketchDim, grad.Len())
	}
	sk := tensor.MatVec(g.proj, grad.Reshape(grad.Len()))
	g.head.ZeroGrad()
	return sk
}

func cosine(a, b *tensor.Tensor) float64 {
	na, nb := a.Norm2(), b.Norm2()
	if na == 0 || nb == 0 {
		return 0
	}
	return tensor.Dot(a, b) / (na * nb)
}

// Observe implements cl.Learner.
func (g *GSS) Observe(b cl.LatentBatch) {
	if len(b.Samples) == 0 {
		return
	}
	// Rehearse before measuring candidate gradients, like the reference
	// implementation: train on incoming + buffer draw.
	train := append(g.trainBuf[:0], b.Samples...)
	for i := 0; i < g.cfg.ReplaySize && len(g.buf) > 0; i++ {
		it := g.buf[g.rng.Intn(len(g.buf))].it
		if g.codec != nil {
			it = g.codec.Decode(it, i)
		}
		train = append(train, cl.LatentSample{Z: it.Z, Label: it.Label})
	}
	g.trainBuf = train
	g.head.TrainCEOn(train)

	for _, s := range b.Samples {
		sk := g.gradSketch(s)
		item := gssItem{it: replay.Item{Z: s.Z, Label: s.Label, GradSketch: sk}, sketch: sk}
		if len(g.buf) < g.cfg.BufferSize {
			item.score = g.maxSimilarity(sk)
			if g.codec != nil {
				item.it = g.codec.Encode(item.it, nil)
			}
			g.buf = append(g.buf, item)
			continue
		}
		c := g.maxSimilarity(sk)
		// Pick a victim with probability proportional to its (shifted)
		// similarity score; replace only if the candidate is more diverse.
		vi := g.weightedVictim()
		if c+1 < g.buf[vi].score+1 {
			item.score = c
			if g.codec != nil {
				item.it = g.codec.Encode(item.it, g.buf[vi].it.QZ)
			}
			g.buf[vi] = item
		}
	}
}

// maxSimilarity returns the max cosine similarity of sk against a random
// subset of the buffer (−1 when the buffer is empty, i.e. maximally diverse).
func (g *GSS) maxSimilarity(sk *tensor.Tensor) float64 {
	if len(g.buf) == 0 {
		return -1
	}
	n := g.SubsetSize
	if n > len(g.buf) {
		n = len(g.buf)
	}
	best := -1.0
	for i := 0; i < n; i++ {
		other := g.buf[g.rng.Intn(len(g.buf))]
		if c := cosine(sk, other.sketch); c > best {
			best = c
		}
	}
	return best
}

// weightedVictim samples a buffer index with probability ∝ score+1.
func (g *GSS) weightedVictim() int {
	var z float64
	for _, it := range g.buf {
		z += it.score + 1
	}
	if z <= 0 {
		return g.rng.Intn(len(g.buf))
	}
	r := g.rng.Float64() * z
	acc := 0.0
	for i, it := range g.buf {
		acc += it.score + 1
		if r < acc {
			return i
		}
	}
	return len(g.buf) - 1
}

// Len reports the buffer fill (tests).
func (g *GSS) Len() int { return len(g.buf) }
