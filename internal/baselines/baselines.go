// Package baselines implements the continual-learning methods the paper
// compares Chameleon against (Table I / Fig. 2): the Finetuning lower bound,
// the JOINT upper bound, the regularisation methods EWC++ and LwF, the
// streaming classifier SLDA, and the replay methods GSS, ER, DER and Latent
// Replay.
//
// All methods learn in latent space above the shared frozen extractor, the
// same substrate Chameleon uses (see internal/cl); what distinguishes them is
// their buffer policy, loss, and — in internal/memcost — what they must
// store per sample. Methods that conceptually keep raw images (ER, DER, GSS)
// replay identical latents here because f(·) is frozen; their raw-image
// storage cost is charged by the memory accounting, and their extra
// re-extraction compute is charged by the hardware models.
package baselines

import (
	"math/rand"
	"time"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/tensor"
)

// Config carries the knobs shared by the baseline constructors.
type Config struct {
	// BufferSize is the replay-buffer capacity in samples.
	BufferSize int
	// ReplaySize is how many buffer samples are rehearsed per batch
	// (default 10, matching the paper's FPGA experiment).
	ReplaySize int
	// Lambda weighs the auxiliary loss (EWC penalty, LwF/DER distillation).
	Lambda float64
	// Temperature is the distillation temperature (LwF).
	Temperature float64
	// Epochs is JOINT's offline epoch count (paper: 4).
	Epochs int
	// ReplayInt8 stores replay payloads as int8 latents with a symmetric
	// per-tensor scale (quantize on insert, dequantize on draw). It applies
	// to every buffered method — ER, DER, GSS, Latent Replay — so the whole
	// Table I grid can run quantized; the regularisation methods and SLDA
	// keep no replay payloads and ignore it.
	ReplayInt8 bool
	// Meter, when non-nil, counts replay-buffer traffic (single unified
	// buffers live off-chip).
	Meter *cl.TrafficMeter
	// Seed drives method-internal randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ReplaySize <= 0 {
		c.ReplaySize = 10
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Temperature == 0 {
		c.Temperature = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	return c
}

func (c Config) rng(salt int64) *rand.Rand { return cl.RNG(c.Seed, salt) }

// rngSource is rng with a checkpointable source (same bit stream); learners
// that draw randomness keep the source so Snapshot can record its position.
func (c Config) rngSource(salt int64) (*rand.Rand, *checkpoint.Source) {
	return cl.RNGSource(c.Seed, salt)
}

// Finetune is the naive single-epoch lower bound: SGD on each incoming batch
// with no memory of the past.
type Finetune struct {
	head *cl.Head
	met  observeTimer
}

// NewFinetune creates the lower-bound learner.
func NewFinetune(head *cl.Head) *Finetune {
	return &Finetune{head: head, met: newObserveTimer("finetune")}
}

// Name implements cl.Learner.
func (f *Finetune) Name() string { return "finetune" }

// Observe implements cl.Learner.
func (f *Finetune) Observe(b cl.LatentBatch) {
	defer f.met.observe(time.Now(), len(b.Samples))
	f.head.TrainCEOn(b.Samples)
}

// Predict implements cl.Learner.
func (f *Finetune) Predict(z *tensor.Tensor) int { return f.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (f *Finetune) PredictBatch(zs []*tensor.Tensor, out []int) { f.head.PredictBatch(zs, out) }

// Joint is the traditional multi-epoch upper bound: it accumulates the whole
// stream and trains offline in Finish (paper: 4 epochs of joint training).
type Joint struct {
	head     *cl.Head
	cfg      Config
	pool     []cl.LatentSample
	rng      *rand.Rand
	src      *checkpoint.Source
	batchBuf []cl.LatentSample // reusable minibatch assembly buffer
	met      observeTimer
}

// NewJoint creates the upper-bound learner.
func NewJoint(head *cl.Head, cfg Config) *Joint {
	cfg = cfg.withDefaults()
	rng, src := cfg.rngSource(1)
	return &Joint{head: head, cfg: cfg, rng: rng, src: src, met: newObserveTimer("joint")}
}

// Name implements cl.Learner.
func (j *Joint) Name() string { return "joint" }

// Observe implements cl.Learner: JOINT violates the streaming constraint by
// design — it keeps everything.
func (j *Joint) Observe(b cl.LatentBatch) {
	defer j.met.observe(time.Now(), len(b.Samples))
	j.pool = append(j.pool, b.Samples...)
}

// Finish implements cl.Finisher: offline multi-epoch training.
func (j *Joint) Finish() {
	if len(j.pool) == 0 {
		return
	}
	idx := j.rng.Perm(len(j.pool))
	const miniBatch = 10
	for ep := 0; ep < j.cfg.Epochs; ep++ {
		j.rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for start := 0; start < len(idx); start += miniBatch {
			end := start + miniBatch
			if end > len(idx) {
				end = len(idx)
			}
			j.batchBuf = j.batchBuf[:0]
			for _, i := range idx[start:end] {
				j.batchBuf = append(j.batchBuf, j.pool[i])
			}
			j.head.TrainCEOn(j.batchBuf)
		}
	}
}

// Predict implements cl.Learner.
func (j *Joint) Predict(z *tensor.Tensor) int { return j.head.Predict(z) }

// PredictBatch implements cl.BatchPredictor.
func (j *Joint) PredictBatch(zs []*tensor.Tensor, out []int) { j.head.PredictBatch(zs, out) }
