package baselines

import (
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// observeSome feeds the first n stream batches to a learner — enough training
// for the class scores to be non-degenerate without running a full stream.
func observeSome(set *cl.LatentSet, l cl.Learner, seed int64, n int) {
	st := set.Stream(seed, data.StreamOptions{BatchSize: 10})
	for i := 0; i < n; i++ {
		b, ok := st.Next()
		if !ok {
			break
		}
		l.Observe(b)
	}
}

// assertBatchMatchesSerial is the BatchPredictor contract check: PredictBatch
// over the whole test pool must agree exactly with per-sample Predict.
func assertBatchMatchesSerial(t *testing.T, l cl.Learner, test []cl.LatentSample) {
	t.Helper()
	bp := cl.Caps(l).BatchPredictor
	if bp == nil {
		t.Fatalf("%s does not implement cl.BatchPredictor", l.Name())
	}
	zs := make([]*tensor.Tensor, len(test))
	for i, s := range test {
		zs[i] = s.Z
	}
	batched := make([]int, len(zs))
	bp.PredictBatch(zs, batched)
	for i, z := range zs {
		if got := l.Predict(z); got != batched[i] {
			t.Fatalf("%s: sample %d serial=%d batched=%d", l.Name(), i, got, batched[i])
		}
	}
}

// TestPredictBatchMatchesSerialAllBaselines runs the contract check over
// every baseline learner, at worker counts on both sides of the sharding
// gate.
func TestPredictBatchMatchesSerialAllBaselines(t *testing.T) {
	defer parallel.SetWorkers(0)
	set := env(t)
	dim := set.Backbone.LatentShape[0]
	classes := set.Dataset.Cfg.NumClasses
	learners := []cl.Learner{
		NewFinetune(head(set, 21)),
		NewJoint(head(set, 22), Config{Epochs: 1, Seed: 22}),
		NewER(head(set, 23), Config{BufferSize: 30, Seed: 23}),
		NewDER(head(set, 24), Config{BufferSize: 30, Seed: 24}),
		NewLatentReplay(head(set, 25), Config{BufferSize: 30, Seed: 25}),
		NewEWCPP(head(set, 26), Config{Seed: 26}),
		NewLwF(head(set, 27), Config{Seed: 27}),
		NewGSS(head(set, 28), Config{BufferSize: 30, Seed: 28}),
		NewSLDA(dim, classes, Config{Seed: 29}),
	}
	for _, l := range learners {
		observeSome(set, l, 31, 4)
		for _, w := range []int{1, 8} {
			parallel.SetWorkers(w)
			assertBatchMatchesSerial(t, l, set.Test)
		}
	}
}

// TestSLDAPredictBatchStaleScores exercises the cached-score invalidation
// path: with RecomputeEvery > 1 the covariance inverse lags the means, and
// PredictBatch must still agree with Predict after every Observe.
func TestSLDAPredictBatchStaleScores(t *testing.T) {
	set := env(t)
	dim := set.Backbone.LatentShape[0]
	s := NewSLDA(dim, set.Dataset.Cfg.NumClasses, Config{Seed: 41})
	s.RecomputeEvery = 7
	st := set.Stream(41, data.StreamOptions{BatchSize: 10})
	for i := 0; i < 5; i++ {
		b, ok := st.Next()
		if !ok {
			break
		}
		s.Observe(b)
		assertBatchMatchesSerial(t, s, set.Test[:20])
	}
}

// TestSLDAPredictBatchAcrossResume checks that the batched scorer is rebuilt
// correctly after a checkpoint round trip (Restore must invalidate every
// cached matrix, not just the covariance inverse).
func TestSLDAPredictBatchAcrossResume(t *testing.T) {
	set := env(t)
	dim := set.Backbone.LatentShape[0]
	s := NewSLDA(dim, set.Dataset.Cfg.NumClasses, Config{Seed: 43})
	observeSome(set, s, 43, 4)
	zs := make([]*tensor.Tensor, len(set.Test))
	for i, smp := range set.Test {
		zs[i] = smp.Z
	}
	want := make([]int, len(zs))
	s.PredictBatch(zs, want)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	observeSome(set, s, 44, 4) // drift the statistics
	if err := s.Restore(blob); err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(zs))
	s.PredictBatch(zs, got)
	for i := range zs {
		if got[i] != want[i] {
			t.Fatalf("sample %d: pre-checkpoint=%d post-restore=%d", i, want[i], got[i])
		}
		if serial := s.Predict(zs[i]); serial != got[i] {
			t.Fatalf("sample %d: serial=%d batched=%d after restore", i, serial, got[i])
		}
	}
}
