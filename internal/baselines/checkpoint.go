package baselines

import (
	"fmt"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/nn"
	"chameleon/internal/replay"
	"chameleon/internal/tensor"
)

// This file implements cl.Snapshotter for every baseline learner so grid runs
// can checkpoint and resume any method, not just Chameleon. The same rules as
// core apply: a snapshot holds mutable state only (weights, optimizer
// momentum, buffers, RNG positions, domain-boundary latches) and restores into
// a learner built with the identical Config; all restores validate before
// mutating and return errors — never panic — on corrupt or mismatched input.

// checkTensors validates a serialized tensor list against reference shapes.
func checkTensors(what string, ts []*tensor.Tensor, ref []*nn.Param) error {
	if len(ts) != len(ref) {
		return fmt.Errorf("baselines: %s has %d tensors, model has %d", what, len(ts), len(ref))
	}
	for i, t := range ts {
		if t == nil || !t.SameShape(ref[i].Data) {
			return fmt.Errorf("baselines: %s tensor %d does not match shape %v", what, i, ref[i].Data.Shape())
		}
	}
	return nil
}

func cloneTensors(ts []*tensor.Tensor) []*tensor.Tensor {
	if ts == nil {
		return nil
	}
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// ---- Finetune -------------------------------------------------------------

type finetuneState struct {
	Head cl.HeadState
}

// Snapshot implements cl.Snapshotter.
func (f *Finetune) Snapshot() ([]byte, error) {
	return checkpoint.Encode(finetuneState{Head: f.head.State()})
}

// Restore implements cl.Snapshotter.
func (f *Finetune) Restore(data []byte) error {
	var st finetuneState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode finetune snapshot: %w", err)
	}
	return f.head.SetState(st.Head)
}

// ---- Joint ----------------------------------------------------------------

type jointState struct {
	Head cl.HeadState
	Pool []cl.LatentSample
	Rand checkpoint.RandState
}

// Snapshot implements cl.Snapshotter. JOINT's pool is the whole stream so
// far; its snapshots are proportionally large, which is the price of
// checkpointing an upper bound that keeps everything.
func (j *Joint) Snapshot() ([]byte, error) {
	return checkpoint.Encode(jointState{
		Head: j.head.State(),
		Pool: append([]cl.LatentSample(nil), j.pool...),
		Rand: j.src.State(),
	})
}

// Restore implements cl.Snapshotter.
func (j *Joint) Restore(data []byte) error {
	var st jointState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode joint snapshot: %w", err)
	}
	if err := j.head.SetState(st.Head); err != nil {
		return err
	}
	j.pool = append(j.pool[:0:0], st.Pool...)
	j.src.Restore(st.Rand)
	return nil
}

// ---- ER / DER (reservoir buffers) ----------------------------------------

type reservoirState struct {
	Head  cl.HeadState
	Items []replay.Item
	Seen  int
	Rand  checkpoint.RandState
}

func snapshotReservoir(head *cl.Head, buf *replay.Reservoir, src *checkpoint.Source) ([]byte, error) {
	items, seen := buf.State()
	return checkpoint.Encode(reservoirState{Head: head.State(), Items: items, Seen: seen, Rand: src.State()})
}

func restoreReservoir(name string, data []byte, head *cl.Head, buf *replay.Reservoir, src *checkpoint.Source) error {
	var st reservoirState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode %s snapshot: %w", name, err)
	}
	if err := head.SetState(st.Head); err != nil {
		return err
	}
	if err := buf.SetState(st.Items, st.Seen); err != nil {
		return err
	}
	src.Restore(st.Rand)
	return nil
}

// Snapshot implements cl.Snapshotter.
func (e *ER) Snapshot() ([]byte, error) { return snapshotReservoir(e.head, e.buf, e.src) }

// Restore implements cl.Snapshotter.
func (e *ER) Restore(data []byte) error { return restoreReservoir("er", data, e.head, e.buf, e.src) }

// Snapshot implements cl.Snapshotter. The buffered logits ride along inside
// the reservoir items; DER's replay loss depends on them.
func (d *DER) Snapshot() ([]byte, error) { return snapshotReservoir(d.head, d.buf, d.src) }

// Restore implements cl.Snapshotter.
func (d *DER) Restore(data []byte) error { return restoreReservoir("der", data, d.head, d.buf, d.src) }

// ---- Latent Replay --------------------------------------------------------

type latentState struct {
	Head  cl.HeadState
	Items []replay.Item
	Seen  int
	Rand  checkpoint.RandState
}

// Snapshot implements cl.Snapshotter.
func (l *LatentReplay) Snapshot() ([]byte, error) {
	return checkpoint.Encode(latentState{
		Head:  l.head.State(),
		Items: append([]replay.Item(nil), l.items...),
		Seen:  l.seen,
		Rand:  l.src.State(),
	})
}

// Restore implements cl.Snapshotter.
func (l *LatentReplay) Restore(data []byte) error {
	var st latentState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode latent-replay snapshot: %w", err)
	}
	if len(st.Items) > l.cfg.BufferSize {
		return fmt.Errorf("baselines: restoring %d items into capacity-%d latent buffer", len(st.Items), l.cfg.BufferSize)
	}
	if st.Seen < len(st.Items) {
		return fmt.Errorf("baselines: latent buffer seen %d < stored %d", st.Seen, len(st.Items))
	}
	if err := replay.CheckDtype(st.Items, l.codec != nil, "latent buffer"); err != nil {
		return err
	}
	if err := l.head.SetState(st.Head); err != nil {
		return err
	}
	l.items = append(l.items[:0:0], st.Items...)
	l.seen = st.Seen
	l.src.Restore(st.Rand)
	return nil
}

// ---- GSS ------------------------------------------------------------------

type gssState struct {
	Head   cl.HeadState
	Items  []replay.Item // GradSketch carries the per-item gradient sketch
	Scores []float64
	Rand   checkpoint.RandState
}

// Snapshot implements cl.Snapshotter.
func (g *GSS) Snapshot() ([]byte, error) {
	st := gssState{Head: g.head.State(), Rand: g.src.State()}
	st.Items = make([]replay.Item, len(g.buf))
	st.Scores = make([]float64, len(g.buf))
	for i, b := range g.buf {
		st.Items[i] = b.it
		st.Items[i].GradSketch = b.sketch
		st.Scores[i] = b.score
	}
	return checkpoint.Encode(st)
}

// Restore implements cl.Snapshotter. The projection matrix is not serialized:
// it is a pure function of (seed, SketchDim) and regenerates lazily on the
// next gradSketch call, identical to the one the snapshotting run used.
func (g *GSS) Restore(data []byte) error {
	var st gssState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode gss snapshot: %w", err)
	}
	if len(st.Items) != len(st.Scores) {
		return fmt.Errorf("baselines: gss snapshot has %d items but %d scores", len(st.Items), len(st.Scores))
	}
	if len(st.Items) > g.cfg.BufferSize {
		return fmt.Errorf("baselines: restoring %d items into capacity-%d gss buffer", len(st.Items), g.cfg.BufferSize)
	}
	for i, it := range st.Items {
		if it.GradSketch == nil || it.GradSketch.Len() != g.SketchDim {
			return fmt.Errorf("baselines: gss item %d sketch does not match SketchDim %d", i, g.SketchDim)
		}
	}
	if err := replay.CheckDtype(st.Items, g.codec != nil, "gss buffer"); err != nil {
		return err
	}
	if err := g.head.SetState(st.Head); err != nil {
		return err
	}
	g.buf = make([]gssItem, len(st.Items))
	for i, it := range st.Items {
		g.buf[i] = gssItem{it: it, score: st.Scores[i], sketch: it.GradSketch}
	}
	g.src.Restore(st.Rand)
	return nil
}

// ---- SLDA -----------------------------------------------------------------

type sldaState struct {
	Dim, Classes int
	Means        *tensor.Tensor
	Counts       []float64
	Cov          *tensor.Tensor
	N            float64
	Inversions   int
	SinceInv     int
}

// Snapshot implements cl.Snapshotter. The cached precision Λ is derived state
// and is not stored; the restored learner recomputes it on first Predict.
func (s *SLDA) Snapshot() ([]byte, error) {
	return checkpoint.Encode(sldaState{
		Dim: s.dim, Classes: s.classes,
		Means:      s.means.Clone(),
		Counts:     append([]float64(nil), s.counts...),
		Cov:        s.cov.Clone(),
		N:          s.n,
		Inversions: s.inversion,
		SinceInv:   s.sinceInv,
	})
}

// Restore implements cl.Snapshotter.
func (s *SLDA) Restore(data []byte) error {
	var st sldaState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode slda snapshot: %w", err)
	}
	if st.Dim != s.dim || st.Classes != s.classes {
		return fmt.Errorf("baselines: slda snapshot is %dd/%d-class, learner is %dd/%d-class",
			st.Dim, st.Classes, s.dim, s.classes)
	}
	if st.Means == nil || !st.Means.SameShape(s.means) || st.Cov == nil || !st.Cov.SameShape(s.cov) {
		return fmt.Errorf("baselines: slda snapshot statistics do not match learner shapes")
	}
	if len(st.Counts) != s.classes || st.N < 0 {
		return fmt.Errorf("baselines: slda snapshot counts are inconsistent")
	}
	s.means.CopyFrom(st.Means)
	copy(s.counts, st.Counts)
	s.cov.CopyFrom(st.Cov)
	s.n = st.N
	s.inversion = st.Inversions
	s.sinceInv = st.SinceInv
	// Λ and the per-class score cache are both derived state: drop them so the
	// first prediction after resume rebuilds from the restored statistics.
	s.lambda, s.stale = nil, true
	s.w, s.scoresStale = nil, true
	return nil
}

// ---- EWC++ ----------------------------------------------------------------

type ewcState struct {
	Head       cl.HeadState
	Fisher     []*tensor.Tensor
	Anchor     []*tensor.Tensor
	LastDomain int
	Seen       bool
}

// Snapshot implements cl.Snapshotter.
func (e *EWCPP) Snapshot() ([]byte, error) {
	return checkpoint.Encode(ewcState{
		Head:       e.head.State(),
		Fisher:     cloneTensors(e.fisher),
		Anchor:     cloneTensors(e.anchor),
		LastDomain: e.lastDomain,
		Seen:       e.seen,
	})
}

// Restore implements cl.Snapshotter.
func (e *EWCPP) Restore(data []byte) error {
	var st ewcState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode ewcpp snapshot: %w", err)
	}
	ps := e.head.Params()
	if err := checkTensors("ewcpp fisher", st.Fisher, ps); err != nil {
		return err
	}
	if err := checkTensors("ewcpp anchor", st.Anchor, ps); err != nil {
		return err
	}
	if err := e.head.SetState(st.Head); err != nil {
		return err
	}
	e.fisher = cloneTensors(st.Fisher)
	e.anchor = cloneTensors(st.Anchor)
	e.lastDomain = st.LastDomain
	e.seen = st.Seen
	return nil
}

// ---- LwF ------------------------------------------------------------------

type lwfState struct {
	Head       cl.HeadState
	Teacher    []*tensor.Tensor
	HasTeacher bool
	LastDomain int
	Seen       bool
}

// Snapshot implements cl.Snapshotter.
func (l *LwF) Snapshot() ([]byte, error) {
	return checkpoint.Encode(lwfState{
		Head:       l.head.State(),
		Teacher:    cloneTensors(l.teacher),
		HasTeacher: l.hasTeacher,
		LastDomain: l.lastDomain,
		Seen:       l.seen,
	})
}

// Restore implements cl.Snapshotter.
func (l *LwF) Restore(data []byte) error {
	var st lwfState
	if err := checkpoint.Decode(data, &st); err != nil {
		return fmt.Errorf("baselines: decode lwf snapshot: %w", err)
	}
	if st.HasTeacher {
		if err := checkTensors("lwf teacher", st.Teacher, l.head.Params()); err != nil {
			return err
		}
	}
	if err := l.head.SetState(st.Head); err != nil {
		return err
	}
	if st.HasTeacher {
		l.teacher = cloneTensors(st.Teacher)
	} else {
		l.teacher = nil
	}
	l.hasTeacher = st.HasTeacher
	l.lastDomain = st.LastDomain
	l.seen = st.Seen
	return nil
}
