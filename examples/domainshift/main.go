// Domainshift: a Fig.-1-style look at the synthetic CORe50 benchmark. It
// prints per-domain acquisition statistics (the parametric stand-ins for
// "different backgrounds and lighting"), then demonstrates catastrophic
// forgetting: a naive single-pass learner is evaluated on every *seen*
// domain after finishing each domain, showing accuracy on early domains
// decaying as training moves on — the effect replay buffers exist to fix.
//
//	go run ./examples/domainshift
package main

import (
	"fmt"
	"log"

	"chameleon/internal/baselines"
	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/exp"
)

func main() {
	log.SetFlags(0)
	sc := exp.TestScale()
	set, err := exp.BuildLatentSet("core50", sc, exp.DefaultCacheDir(),
		func(f string, a ...any) { log.Printf(f, a...) })
	if err != nil {
		log.Fatal(err)
	}
	ds := set.Dataset

	fmt.Println("Synthetic CORe50 acquisition conditions (cf. paper Fig. 1):")
	fmt.Printf("%-8s %10s %10s %8s %10s %10s\n", "domain", "brightness", "contrast", "noise", "shift", "role")
	for d, p := range ds.Domains {
		role := "train"
		for _, td := range ds.Cfg.TestDomains {
			if td == d {
				role = "TEST (held out)"
			}
		}
		fmt.Printf("%-8d %10.2f %10.2f %8.2f %6d,%-3d %s\n",
			d, p.Brightness, p.Contrast, p.Noise, p.ShiftX, p.ShiftY, role)
	}

	// Catastrophic forgetting curve: train a naive learner domain by domain;
	// after each domain, evaluate on frames from each previously seen domain.
	fmt.Println("\nCatastrophic forgetting of naive finetuning (rows: after training domain;")
	fmt.Println("columns: accuracy on train-pool frames of each earlier domain):")
	ft := baselines.NewFinetune(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: 1}))
	stream := set.Stream(1, data.StreamOptions{BatchSize: 10})

	byDomain := map[int][]cl.LatentSample{}
	for _, s := range set.Train {
		byDomain[s.Domain] = append(byDomain[s.Domain], s)
	}
	evalDomain := func(d int) float64 {
		pool := byDomain[d]
		hits := 0
		for _, s := range pool {
			if ft.Predict(s.Z) == s.Label {
				hits++
			}
		}
		return float64(hits) / float64(len(pool))
	}

	header := fmt.Sprintf("%-16s", "")
	for _, d := range ds.TrainDomains {
		header += fmt.Sprintf("  dom%-4d", d)
	}
	fmt.Println(header)
	current := -1
	emitRow := func() {
		row := fmt.Sprintf("after dom%-6d:", current)
		for _, d := range ds.TrainDomains {
			row += fmt.Sprintf("  %5.1f%%", 100*evalDomain(d))
			if d == current {
				break
			}
		}
		fmt.Println(row)
	}
	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if current != -1 && b.Domain != current {
			emitRow()
		}
		current = b.Domain
		ft.Observe(b)
	}
	emitRow()

	fmt.Println("\nReading down any column: accuracy on a domain peaks while it streams and")
	fmt.Println("erodes afterwards — the catastrophic forgetting Chameleon's dual replay fixes.")
}
