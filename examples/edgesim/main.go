// Edgesim: hardware co-simulation. Prices one online training step of
// Chameleon, Latent Replay and SLDA on the three platforms of the paper's
// Table II (Jetson Nano roofline, ZCU102 FPGA accelerator, EdgeTPU-class
// systolic array) and prints the latency/energy breakdown, the speedups, and
// the FPGA resource report of Table III.
//
//	go run ./examples/edgesim
package main

import (
	"fmt"

	"chameleon/internal/hw"
	"chameleon/internal/mobilenet"
)

func main() {
	cfg := mobilenet.PaperConfig(50)
	cfg.Resolution = 128 // the benchmarks' native camera resolution
	profiler := hw.NewProfiler(cfg, hw.DefaultProfileParams())
	// On the GPU, Latent Replay's reference implementation replays a much
	// larger minibatch per input; the FPGA experiment pins both methods to
	// ten replay elements (paper §IV-C). Table II follows the same split.
	gpuLatentProfiler := hw.NewProfiler(cfg, hw.ProfileParams{Replay: 50, AccessRate: 10, BytesPerScalar: 2})

	platforms := []hw.Platform{hw.JetsonNano(), hw.ZCU102(), hw.EdgeTPU()}
	methods := []string{"chameleon", "latent", "slda"}

	fmt.Println("Per-image online training step, MobileNetV1-1.0 @128, batch 1 + 10 replay")
	fmt.Println("(latent replay on the GPU uses its reference 50-element replay minibatch)")
	fmt.Println()
	costs := map[string]map[string]hw.Cost{}
	for _, m := range methods {
		p, err := profiler.Profile(m)
		if err != nil {
			panic(err)
		}
		costs[m] = map[string]hw.Cost{}
		fmt.Printf("%-10s  fwd %5.0fM MACs  bwd %5.0fM MACs  off-chip %6.1f KiB  on-chip %6.1f KiB\n",
			m, float64(p.FwdMACs)/1e6, float64(p.BwdMACs)/1e6,
			float64(p.OffChipBytes)/1024, float64(p.OnChipBytes)/1024)
		for _, plat := range platforms {
			pp := p
			if m == "latent" && plat.Name() == "jetson-nano" {
				pp, err = gpuLatentProfiler.Profile(m)
				if err != nil {
					panic(err)
				}
			}
			c := plat.Step(pp)
			costs[m][plat.Name()] = c
			fmt.Printf("    %-12s %9.1f ms  %6.2f J   [compute %2.0f%% | data %2.0f%% | serial %2.0f%%]\n",
				plat.Name(), c.LatencySec*1e3, c.EnergyJ,
				100*c.ComputeFrac, 100*c.DataFrac, 100*c.SerialFrac)
		}
		fmt.Println()
	}

	fmt.Println("Chameleon speedups (paper: 3.5×/2.1× on Nano, 6.75× on FPGA, 11.7× on EdgeTPU):")
	cham := costs["chameleon"]
	fmt.Printf("  vs latent replay: %4.1f× (nano)  %4.1f× (fpga)  %4.1f× (edgetpu)\n",
		costs["latent"]["jetson-nano"].LatencySec/cham["jetson-nano"].LatencySec,
		costs["latent"]["zcu102"].LatencySec/cham["zcu102"].LatencySec,
		costs["latent"]["edgetpu"].LatencySec/cham["edgetpu"].LatencySec)
	fmt.Printf("  vs slda:          %4.1f× (nano)  %4.1f× (fpga)  %4.1f× (edgetpu)\n",
		costs["slda"]["jetson-nano"].LatencySec/cham["jetson-nano"].LatencySec,
		costs["slda"]["zcu102"].LatencySec/cham["zcu102"].LatencySec,
		costs["slda"]["edgetpu"].LatencySec/cham["edgetpu"].LatencySec)

	fmt.Println("\nZCU102 resource utilization (Table III):")
	fmt.Println("  " + hw.ZCU102().Resources().String())
}
