// Quickstart: build a small synthetic CORe50-style benchmark, pretrain and
// freeze a MobileNetV1 backbone, then run Chameleon's dual-memory replay over
// the online stream and print the final accuracy.
//
//	go run ./examples/quickstart
//
// The first run builds the pipeline (~30 s on one core); afterwards the
// extracted latents are cached under the system temp directory.
package main

import (
	"fmt"
	"log"

	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/data"
	"chameleon/internal/exp"
)

func main() {
	log.SetFlags(0)
	sc := exp.TestScale()

	// 1. Build the pipeline: synthetic benchmark -> pretrained frozen
	//    backbone -> cached latents.
	set, err := exp.BuildLatentSet("core50", sc, exp.DefaultCacheDir(),
		func(f string, a ...any) { log.Printf(f, a...) })
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create the learner: a fresh trainable head g(·) plus Chameleon's two
	//    stores (on-chip short-term, off-chip long-term).
	head := cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: 1})
	learner := core.New(head, core.Config{
		STCap:        10,  // short-term store: 10 latents ≈ 0.3 MB on-chip
		LTCap:        40,  // long-term store, class balanced
		AccessRate:   5,   // rehearse the long-term store every 5 batches
		PromoteEvery: 1,   // promote one short-term sample per batch
		Window:       200, // preference learning window (samples)
		Seed:         1,
	})

	// 3. Run the online, single-pass, domain-incremental stream.
	stream := set.Stream(1, data.StreamOptions{BatchSize: 10})
	fmt.Printf("streaming %d samples across domains %v...\n", stream.Total(), set.Dataset.TrainDomains)
	res := cl.RunOnline(learner, stream, set.Test)

	// 4. Report.
	fmt.Printf("\nChameleon  Acc_all = %.2f%%  (test pool: %d held-out-domain frames)\n",
		100*res.AccAll, len(set.Test))
	fmt.Printf("short-term store: %d/%d latents | long-term store: %d/%d latents over %d classes\n",
		learner.ShortTerm().Len(), learner.ShortTerm().Cap(),
		learner.LongTerm().Len(), learner.LongTerm().Cap(), len(learner.LongTerm().Classes()))
	fmt.Printf("preferred classes tracked on-device: %v (Δ=%.2f)\n",
		learner.Tracker().Preferred(), learner.Tracker().Delta())
}
