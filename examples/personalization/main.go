// Personalization: the paper's user-centric motivation. A user-skewed stream
// (Zipf class frequencies with drifting preferences) is fed to Chameleon and
// to plain ER with the same total replay budget; the example reports overall
// accuracy and accuracy restricted to the user's preferred classes, showing
// how the allocation factor Δ (Eq. 2) steers the short-term store toward the
// classes the user actually cares about.
//
//	go run ./examples/personalization
package main

import (
	"fmt"
	"log"
	"math"

	"chameleon/internal/baselines"
	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/data"
	"chameleon/internal/exp"
)

func main() {
	log.SetFlags(0)
	sc := exp.TestScale()
	set, err := exp.BuildLatentSet("core50", sc, exp.DefaultCacheDir(),
		func(f string, a ...any) { log.Printf(f, a...) })
	if err != nil {
		log.Fatal(err)
	}

	opts := data.StreamOptions{
		BatchSize:   10,
		UserCentric: true,
		PrefSkew:    1.6, // strong user preference
		PrefTopK:    3,
	}

	type rowT struct {
		name      string
		acc, pref float64
	}
	var rows []rowT
	seeds := []int64{1, 2, 3}

	run := func(name string, mk func(seed int64) cl.Learner) {
		var acc, pref float64
		n := 0
		for _, seed := range seeds {
			stream := set.Stream(seed, opts)
			res := cl.RunOnline(mk(seed), stream, set.Test)
			acc += res.AccAll
			if !math.IsNaN(res.PreferredAcc) {
				pref += res.PreferredAcc
				n++
			}
		}
		rows = append(rows, rowT{name, acc / float64(len(seeds)), pref / float64(n)})
	}

	run("chameleon (10+40)", func(seed int64) cl.Learner {
		return core.New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: seed}), core.Config{
			STCap: 10, LTCap: 40, AccessRate: 5, PromoteEvery: 1,
			Window: 150, TopK: 3, Rho: core.Float(0.6), Seed: seed,
		})
	})
	run("er (50)", func(seed int64) cl.Learner {
		return baselines.NewER(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: seed}),
			baselines.Config{BufferSize: 50, Seed: seed})
	})
	run("finetune", func(seed int64) cl.Learner {
		return baselines.NewFinetune(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: seed}))
	})

	fmt.Println("\nUser-centric stream (Zipf-skewed class frequencies, 3 preferred classes)")
	fmt.Printf("%-20s %12s %18s\n", "method", "Acc_all", "preferred-class acc")
	for _, r := range rows {
		fmt.Printf("%-20s %11.2f%% %17.2f%%\n", r.name, 100*r.acc, 100*r.pref)
	}
	fmt.Println("\nUnder heavy class skew every method scores higher on the user's preferred")
	fmt.Println("classes (they dominate the stream); Chameleon additionally keeps the best")
	fmt.Println("overall Acc_all, because its class-balanced long-term store protects the")
	fmt.Println("rare classes that skewed reservoir/random buffers displace.")
}
